#ifndef ARECEL_ML_KERNELS_H_
#define ARECEL_ML_KERNELS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "ml/matrix.h"

namespace arecel {

// Kernel backend for the ML substrate's compute-heavy paths (DESIGN.md §10).
//
//  * kReference — the original scalar i-k-j loops, kept verbatim (including
//    the `av == 0.0f` skip branches). Slow but simple: the numerical
//    baseline that the fast backend is differentially tested against
//    (tests/ml_kernels_test.cc) and the "reference_seconds" column of
//    bench_micro_ml / BENCH_ml.json.
//  * kFast — cache-blocked, branch-free kernels with SIMD inner loops
//    (AVX-512 or AVX2+FMA when the binary and CPU support them,
//    compiler-vectorized portable loops otherwise) plus fused
//    dense+bias+activation epilogues.
//  * kQuant — inference-only int8 serving tier. Identical to kFast for
//    every training/backward/matmul op; dense FORWARD calls through layers
//    that hold a packed weight cache (ml/packed.h, built by
//    PackForInference) run symmetric per-column int8 compute with a fused
//    dequant epilogue instead of fp32. Layers without a pack — every
//    training path — stay fp32, so the tier is opt-in per estimator.
//
// Selection: `ARECEL_ML_KERNEL=reference|fast|quant` (default fast), read
// once on first use; SetMlKernelBackend / ScopedMlKernelBackend override it
// at runtime for tests and benches.
//
// Accumulation-order caveat: the reference and fast backends sum in
// different orders (FMA contraction, per-lane partial sums, register
// tiling), so outputs agree only to float rounding — tolerances are
// documented in tests/ml_kernels_test.cc. The quant backend is lossy by
// construction (int8 weights + 7-bit activations); its divergence is gated
// end-to-end with q-error budgets in bench_micro_ml, not float tolerances.
// Switching backends mid-training changes the trajectory the same way a
// different BLAS would; goldens are frozen against the fast backend.
enum class MlKernelBackend { kReference, kFast, kQuant };

// The active backend (env-derived until overridden). Exits with code 2 on
// an invalid ARECEL_ML_KERNEL value, mirroring ARECEL_FALLBACK validation.
MlKernelBackend ActiveMlKernelBackend();
void SetMlKernelBackend(MlKernelBackend backend);

// Parses "reference" / "fast" / "quant". Returns false on anything else.
bool ParseMlKernelBackend(const char* name, MlKernelBackend* out);

// Stable name of a backend ("reference" / "fast" / "quant"), for stats and
// bench headers.
const char* MlKernelBackendName(MlKernelBackend backend);

// ISA tag of the fast/quant path as resolved on this machine/binary:
// "avx512", "avx2-fma" or "portable". Independent of the active backend.
// Resolution prefers the widest tier the binary AND the CPU support;
// `ARECEL_ML_SIMD=avx512|avx2|portable` pins a tier (exit 2 if the named
// tier is not available — misconfigured pinning should be loud, matching
// ARECEL_ML_KERNEL validation).
const char* MlKernelSimdName();

// Re-points the fast/quant dispatch at a named tier ("portable", "avx2",
// "avx512"). Returns false — leaving dispatch unchanged — when that tier is
// not compiled in or the CPU lacks it. For tests/benches sweeping tiers.
bool SetMlKernelIsa(const char* name);

// Names of every tier available on this machine/binary, widest last.
std::vector<const char*> AvailableMlKernelIsas();

// Runtime CPUID summary of the SIMD features the kernels dispatch on, e.g.
// "avx2,fma,avx512f,avx512bw" (empty on non-x86). Recorded in BENCH_ml.json
// headers and ServerStats so cross-machine comparisons are interpretable.
std::string MlCpuFeatureFlags();

// RAII backend override for tests and benches.
class ScopedMlKernelBackend {
 public:
  explicit ScopedMlKernelBackend(MlKernelBackend backend)
      : saved_(ActiveMlKernelBackend()) {
    SetMlKernelBackend(backend);
  }
  ~ScopedMlKernelBackend() { SetMlKernelBackend(saved_); }
  ScopedMlKernelBackend(const ScopedMlKernelBackend&) = delete;
  ScopedMlKernelBackend& operator=(const ScopedMlKernelBackend&) = delete;

 private:
  MlKernelBackend saved_;
};

// RAII ISA-tier override for tests and benches sweeping the dispatch
// (e.g. the packed/quant differential suite). If the named tier is
// unavailable, ok() is false and dispatch is left untouched.
class ScopedMlKernelIsa {
 public:
  explicit ScopedMlKernelIsa(const char* name) : saved_(MlKernelSimdName()) {
    ok_ = SetMlKernelIsa(name);
  }
  ~ScopedMlKernelIsa() {
    if (ok_) SetMlKernelIsa(saved_);
  }
  ScopedMlKernelIsa(const ScopedMlKernelIsa&) = delete;
  ScopedMlKernelIsa& operator=(const ScopedMlKernelIsa&) = delete;

  bool ok() const { return ok_; }

 private:
  const char* saved_;
  bool ok_ = false;
};

// ---------------------------------------------------------------------------
// Fused layer ops. All dispatch on ActiveMlKernelBackend(); the reference
// path reproduces the historical unfused sequence (separate matmul, bias
// broadcast, activation pass) so it stays a faithful numerical baseline.
// ---------------------------------------------------------------------------

// out = act(input * weights + bias). `bias` has length weights.cols() and
// may be null (treated as zero); `relu` selects the activation. The fast
// backend computes bias and activation in the matmul epilogue, writing out
// exactly once.
void DenseForward(const Matrix& input, const Matrix& weights,
                  const float* bias, bool relu, Matrix* out);

// Sliced head: out = input * weights[:, col_begin:col_begin+cols] +
// bias[col_begin:col_begin+cols]. `bias` points at the FULL bias vector
// (length weights.cols()) and may be null. Progressive sampling reads one
// column's logit segment per step; this keeps that step O(cols) without
// materializing the full output layer.
void DenseForwardSlice(const Matrix& input, const Matrix& weights,
                       const float* bias, size_t col_begin, size_t cols,
                       Matrix* out);

// Backward of out = act(input * W + bias): consumes dL/d(out), accumulates
// dW into `weight_grad` (shape W) and db into `bias_grad` (length
// W.cols()), and writes dL/d(input) to `input_grad` when non-null.
// `preact` is the cached pre-activation (ignored unless `relu`).
// `dz_scratch` avoids a per-call allocation for the masked gradient; it is
// only touched when `relu` is set.
void DenseBackward(const Matrix& input, const Matrix& preact, bool relu,
                   const Matrix& output_grad, const Matrix& weights,
                   Matrix* weight_grad, float* bias_grad, Matrix* input_grad,
                   Matrix* dz_scratch);

// out += a^T * b without zeroing out first (gradient accumulation).
void MatMulATAccumulate(const Matrix& a, const Matrix& b, Matrix* out);

// Elementwise helpers shared by both backends (bit-exact either way).
void AddInPlace(Matrix* acc, const Matrix& x);   // acc += x.
void ReluInPlace(Matrix* m);                     // m = max(m, 0).

}  // namespace arecel

#endif  // ARECEL_ML_KERNELS_H_
