#ifndef ARECEL_ML_KERNELS_H_
#define ARECEL_ML_KERNELS_H_

#include <cstddef>

#include "ml/matrix.h"

namespace arecel {

// Kernel backend for the ML substrate's compute-heavy paths (DESIGN.md §10).
//
//  * kReference — the original scalar i-k-j loops, kept verbatim (including
//    the `av == 0.0f` skip branches). Slow but simple: the numerical
//    baseline that the fast backend is differentially tested against
//    (tests/ml_kernels_test.cc) and the "reference_seconds" column of
//    bench_micro_ml / BENCH_ml.json.
//  * kFast — cache-blocked, branch-free kernels with SIMD inner loops
//    (AVX2+FMA when the binary and CPU support it, compiler-vectorized
//    portable loops otherwise) plus fused dense+bias+activation epilogues.
//
// Selection: `ARECEL_ML_KERNEL=reference|fast` (default fast), read once on
// first use; SetMlKernelBackend / ScopedMlKernelBackend override it at
// runtime for tests and benches.
//
// Accumulation-order caveat: the two backends sum in different orders
// (FMA contraction, per-lane partial sums, register tiling), so outputs
// agree only to float rounding — tolerances are documented in
// tests/ml_kernels_test.cc. Switching backends mid-training changes the
// trajectory the same way a different BLAS would; goldens are frozen
// against the fast backend.
enum class MlKernelBackend { kReference, kFast };

// The active backend (env-derived until overridden). Exits with code 2 on
// an invalid ARECEL_ML_KERNEL value, mirroring ARECEL_FALLBACK validation.
MlKernelBackend ActiveMlKernelBackend();
void SetMlKernelBackend(MlKernelBackend backend);

// Parses "reference" / "fast". Returns false on anything else.
bool ParseMlKernelBackend(const char* name, MlKernelBackend* out);

// ISA tag of the fast path as resolved on this machine/binary:
// "avx2-fma" or "portable". Independent of the active backend.
const char* MlKernelSimdName();

// RAII backend override for tests and benches.
class ScopedMlKernelBackend {
 public:
  explicit ScopedMlKernelBackend(MlKernelBackend backend)
      : saved_(ActiveMlKernelBackend()) {
    SetMlKernelBackend(backend);
  }
  ~ScopedMlKernelBackend() { SetMlKernelBackend(saved_); }
  ScopedMlKernelBackend(const ScopedMlKernelBackend&) = delete;
  ScopedMlKernelBackend& operator=(const ScopedMlKernelBackend&) = delete;

 private:
  MlKernelBackend saved_;
};

// ---------------------------------------------------------------------------
// Fused layer ops. All dispatch on ActiveMlKernelBackend(); the reference
// path reproduces the historical unfused sequence (separate matmul, bias
// broadcast, activation pass) so it stays a faithful numerical baseline.
// ---------------------------------------------------------------------------

// out = act(input * weights + bias). `bias` has length weights.cols() and
// may be null (treated as zero); `relu` selects the activation. The fast
// backend computes bias and activation in the matmul epilogue, writing out
// exactly once.
void DenseForward(const Matrix& input, const Matrix& weights,
                  const float* bias, bool relu, Matrix* out);

// Sliced head: out = input * weights[:, col_begin:col_begin+cols] +
// bias[col_begin:col_begin+cols]. `bias` points at the FULL bias vector
// (length weights.cols()) and may be null. Progressive sampling reads one
// column's logit segment per step; this keeps that step O(cols) without
// materializing the full output layer.
void DenseForwardSlice(const Matrix& input, const Matrix& weights,
                       const float* bias, size_t col_begin, size_t cols,
                       Matrix* out);

// Backward of out = act(input * W + bias): consumes dL/d(out), accumulates
// dW into `weight_grad` (shape W) and db into `bias_grad` (length
// W.cols()), and writes dL/d(input) to `input_grad` when non-null.
// `preact` is the cached pre-activation (ignored unless `relu`).
// `dz_scratch` avoids a per-call allocation for the masked gradient; it is
// only touched when `relu` is set.
void DenseBackward(const Matrix& input, const Matrix& preact, bool relu,
                   const Matrix& output_grad, const Matrix& weights,
                   Matrix* weight_grad, float* bias_grad, Matrix* input_grad,
                   Matrix* dz_scratch);

// out += a^T * b without zeroing out first (gradient accumulation).
void MatMulATAccumulate(const Matrix& a, const Matrix& b, Matrix* out);

// Elementwise helpers shared by both backends (bit-exact either way).
void AddInPlace(Matrix* acc, const Matrix& x);   // acc += x.
void ReluInPlace(Matrix* m);                     // m = max(m, 0).

}  // namespace arecel

#endif  // ARECEL_ML_KERNELS_H_
