#ifndef ARECEL_ML_AUTOREGRESSIVE_H_
#define ARECEL_ML_AUTOREGRESSIVE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "ml/matrix.h"
#include "util/archive.h"

namespace arecel {

// Interface of a deep autoregressive density model over per-column
// dictionary codes — the abstraction Naru's progressive sampling consumes.
// The paper evaluates two instantiations (§2.4): MADE-style masked MLPs
// (ml/made.h, chosen by the paper as "efficient and accurate") and the
// Transformer (ml/transformer.h). Both factorize
//   P(x_0..x_{n-1}) = prod_i P(x_i | x_<i)
// in natural column order.
class AutoregressiveModel {
 public:
  virtual ~AutoregressiveModel() = default;

  virtual size_t num_columns() const = 0;
  virtual int vocab_size(size_t col) const = 0;

  // One optimizer step over `batch` code rows (row-major, batch * n codes).
  // Returns the mean per-row negative log-likelihood (nats).
  virtual float TrainStep(const std::vector<int32_t>& codes, size_t batch,
                          float learning_rate) = 0;

  // Logits of P(x_col | prefix) for `batch` prefixes; only codes of columns
  // < col need to be valid. Output shape (batch x vocab(col)).
  virtual void ColumnLogits(const std::vector<int32_t>& codes, size_t batch,
                            size_t col, Matrix* logits) const = 0;

  virtual size_t ParamCount() const = 0;

  // Builds the packed/quantized inference-weight forms (ml/packed.h) of the
  // backbone's dense layers, if the instantiation supports them. Call only
  // on a model that has finished training and is not concurrently serving
  // ColumnLogits; further TrainStep calls drop the packs. Default: no-op.
  virtual void PackForInference() {}

  // Persistence (core/model_io.h): writes a backbone tag + structural
  // options + every trainable parameter. Adam moments are training-only
  // state and are not saved; an Update() after a load restarts them.
  virtual void Serialize(ByteWriter* writer) const = 0;
};

// Reconstructs a serialized backbone (either family, dispatched on the
// tag). Returns nullptr on a truncated stream or an impossible shape —
// callers must treat that as a corrupt model, not a fresh one.
std::unique_ptr<AutoregressiveModel> DeserializeAutoregressiveModel(
    ByteReader* reader);

// Factory helpers.
struct ResMadeBackboneOptions {
  size_t hidden_units = 64;
  int num_blocks = 2;
  uint64_t seed = 1;
};
std::unique_ptr<AutoregressiveModel> MakeResMadeModel(
    std::vector<int> vocab_sizes, const ResMadeBackboneOptions& options);

struct TransformerBackboneOptions {
  size_t d_model = 32;
  size_t ffn_hidden = 64;
  int num_blocks = 2;
  uint64_t seed = 1;
};
std::unique_ptr<AutoregressiveModel> MakeTransformerModel(
    std::vector<int> vocab_sizes, const TransformerBackboneOptions& options);

}  // namespace arecel

#endif  // ARECEL_ML_AUTOREGRESSIVE_H_
