#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.h"

namespace arecel {

double Percentile(const std::vector<double>& values, double p) {
  ARECEL_CHECK(!values.empty());
  ARECEL_CHECK(p >= 0.0 && p <= 100.0);
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(std::floor(rank));
  const size_t hi = static_cast<size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

QuantileSummary Summarize(const std::vector<double>& values) {
  if (values.empty()) return QuantileSummary{};
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  auto at = [&](double p) {
    const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
    const size_t lo = static_cast<size_t>(std::floor(rank));
    const size_t hi = static_cast<size_t>(std::ceil(rank));
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
  };
  QuantileSummary s;
  s.p50 = at(50);
  s.p95 = at(95);
  s.p99 = at(99);
  s.max = sorted.back();
  return s;
}

double Mean(const std::vector<double>& values) {
  ARECEL_CHECK(!values.empty());
  return std::accumulate(values.begin(), values.end(), 0.0) /
         static_cast<double>(values.size());
}

double GeometricMean(const std::vector<double>& values) {
  ARECEL_CHECK(!values.empty());
  double log_sum = 0.0;
  for (double v : values) {
    ARECEL_CHECK(v > 0);
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double Variance(const std::vector<double>& values) {
  const double m = Mean(values);
  double acc = 0.0;
  for (double v : values) acc += (v - m) * (v - m);
  return acc / static_cast<double>(values.size());
}

double StdDev(const std::vector<double>& values) {
  return std::sqrt(Variance(values));
}

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  ARECEL_CHECK(x.size() == y.size());
  ARECEL_CHECK(!x.empty());
  const double mx = Mean(x);
  const double my = Mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

std::vector<double> Ranks(const std::vector<double>& values) {
  const size_t n = values.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return values[a] < values[b]; });
  std::vector<double> ranks(n);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    // Average rank for the tie group [i, j].
    const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 +
                       1.0;
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = avg;
    i = j + 1;
  }
  return ranks;
}

double SpearmanCorrelation(const std::vector<double>& x,
                           const std::vector<double>& y) {
  return PearsonCorrelation(Ranks(x), Ranks(y));
}

std::vector<double> TopFraction(const std::vector<double>& values,
                                double fraction) {
  ARECEL_CHECK(!values.empty());
  ARECEL_CHECK(fraction > 0.0 && fraction <= 1.0);
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  size_t count = static_cast<size_t>(
      std::ceil(fraction * static_cast<double>(sorted.size())));
  count = std::max<size_t>(1, std::min(count, sorted.size()));
  return std::vector<double>(sorted.end() - static_cast<long>(count),
                             sorted.end());
}

BoxStats Box(const std::vector<double>& values) {
  BoxStats b;
  b.min = Percentile(values, 0);
  b.q1 = Percentile(values, 25);
  b.median = Percentile(values, 50);
  b.q3 = Percentile(values, 75);
  b.max = Percentile(values, 100);
  return b;
}

}  // namespace arecel
