#ifndef ARECEL_UTIL_RANDOM_H_
#define ARECEL_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace arecel {

// Deterministic pseudo-random generator used across the project.
//
// A thin, fast wrapper around splitmix64/xoshiro256**. Every stochastic
// component in the repository owns one of these, seeded explicitly, so that
// all experiments are reproducible (DESIGN.md §4, "Determinism").
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Raw 64 random bits.
  uint64_t Next();

  // Uniform double in [0, 1).
  double Uniform();

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  // Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Standard normal via Box-Muller.
  double Gaussian();

  // Exponential with rate lambda (mean 1/lambda).
  double Exponential(double lambda);

  // Pareto-style skewed sample in [0, 1): returns a value whose density
  // concentrates near 0 as `shape` grows. shape == 0 is uniform. This is the
  // generator behind the paper's synthetic "genpareto(s)" column.
  double SkewedUnit(double shape);

  // Zipf-distributed integer in [0, n) with exponent `s` (s = 0 uniform).
  // Uses inverse-CDF over precomputed weights for small n; rejection
  // sampling otherwise. Requires n > 0.
  uint64_t Zipf(uint64_t n, double s);

  // Samples k distinct integers from [0, n) (k <= n), in random order.
  std::vector<int> SampleWithoutReplacement(int n, int k);

  // Returns true with probability p.
  bool Bernoulli(double p);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = UniformInt(static_cast<uint64_t>(i));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

// Precomputed Zipf sampler: O(n) setup, O(log n) per sample. Use this when
// drawing many values from the same Zipf(n, s) distribution (e.g. dataset
// generation); Rng::Zipf recomputes the normalizer on every call.
class ZipfSampler {
 public:
  ZipfSampler(uint64_t n, double s);

  uint64_t Sample(Rng& rng) const;

  // Rank whose CDF interval contains u (u in [0, 1)). Sample() is
  // InvertCdf(rng.Uniform()); exposing the inversion lets generators drive
  // the marginal from a shared latent uniform (see data/datasets.cc).
  uint64_t InvertCdf(double u) const;

  uint64_t n() const { return n_; }

 private:
  uint64_t n_;
  std::vector<double> cdf_;  // cumulative normalized weights, size n.
};

}  // namespace arecel

#endif  // ARECEL_UTIL_RANDOM_H_
