#include "util/crc32c.h"

#include <array>

namespace arecel {

namespace {

// Slice-by-8 lookup tables, built once at first use. Table [0] is the
// classic byte-at-a-time table for the reflected Castagnoli polynomial;
// tables [1..7] extend it so eight input bytes fold in per step.
const std::array<std::array<uint32_t, 256>, 8>& Tables() {
  static const auto* tables = [] {
    auto* t = new std::array<std::array<uint32_t, 256>, 8>();
    constexpr uint32_t kPoly = 0x82F63B78u;  // reflected 0x1EDC6F41.
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit)
        crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
      (*t)[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = (*t)[0][i];
      for (size_t slice = 1; slice < 8; ++slice) {
        crc = (*t)[0][crc & 0xffu] ^ (crc >> 8);
        (*t)[slice][i] = crc;
      }
    }
    return t;
  }();
  return *tables;
}

}  // namespace

uint32_t Crc32c(const void* data, size_t size, uint32_t seed) {
  const auto& t = Tables();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t crc = ~seed;
  while (size >= 8) {
    // Fold the current CRC into the first four bytes, then consume eight
    // bytes through the eight slice tables in one step.
    const uint32_t low = crc ^ (static_cast<uint32_t>(p[0]) |
                                static_cast<uint32_t>(p[1]) << 8 |
                                static_cast<uint32_t>(p[2]) << 16 |
                                static_cast<uint32_t>(p[3]) << 24);
    crc = t[7][low & 0xffu] ^ t[6][(low >> 8) & 0xffu] ^
          t[5][(low >> 16) & 0xffu] ^ t[4][low >> 24] ^
          t[3][p[4]] ^ t[2][p[5]] ^ t[1][p[6]] ^ t[0][p[7]];
    p += 8;
    size -= 8;
  }
  while (size-- > 0) crc = t[0][(crc ^ *p++) & 0xffu] ^ (crc >> 8);
  return ~crc;
}

}  // namespace arecel
