#ifndef ARECEL_UTIL_ARCHIVE_H_
#define ARECEL_UTIL_ARCHIVE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace arecel {

// Minimal binary archive over an in-memory buffer: the substrate for model
// persistence (core/model_io.h). Writers append little-endian fixed-width
// scalars and length-prefixed containers; readers validate bounds and
// report failure instead of aborting, so corrupt files degrade gracefully.

class ByteWriter {
 public:
  ByteWriter() = default;

  // A counting writer tallies bytes_written() without storing anything —
  // the cheap capability probe behind SupportsPersistence (core/model_io.h):
  // serializers still walk their state, but no buffer is grown or copied.
  static ByteWriter Counting();

  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void I32(int32_t v) { Raw(&v, sizeof(v)); }
  void F32(float v) { Raw(&v, sizeof(v)); }
  void F64(double v) { Raw(&v, sizeof(v)); }
  void Str(const std::string& s);
  void Floats(const std::vector<float>& v);
  void Doubles(const std::vector<double>& v);
  void Ints(const std::vector<int>& v);

  // The serialized bytes. Empty for a counting writer regardless of what
  // was written.
  const std::string& buffer() const { return buffer_; }

  // Total bytes written so far (counted in both modes).
  size_t bytes_written() const { return bytes_written_; }
  bool counting_only() const { return counting_only_; }

 private:
  void Raw(const void* data, size_t bytes);
  std::string buffer_;
  size_t bytes_written_ = 0;
  bool counting_only_ = false;
};

class ByteReader {
 public:
  explicit ByteReader(const std::string& buffer) : buffer_(buffer) {}

  bool U32(uint32_t* v) { return Raw(v, sizeof(*v)); }
  bool U64(uint64_t* v) { return Raw(v, sizeof(*v)); }
  bool I32(int32_t* v) { return Raw(v, sizeof(*v)); }
  bool F32(float* v) { return Raw(v, sizeof(*v)); }
  bool F64(double* v) { return Raw(v, sizeof(*v)); }
  bool Str(std::string* s);
  bool Floats(std::vector<float>* v);
  bool Doubles(std::vector<double>* v);
  bool Ints(std::vector<int>* v);

  bool AtEnd() const { return position_ == buffer_.size(); }

  // Sticky truncation flag: once any read ran past the end of the buffer
  // (or a length prefix claimed an implausible element count), every later
  // read also fails and failed() stays true. Model deserializers bail on
  // the first false return, but the flag lets LoadEstimator distinguish a
  // *truncated/corrupt* stream (typed as FailureKind::kCorruptModel) from
  // a well-formed stream a deserializer rejected on semantic grounds.
  bool failed() const { return failed_; }
  // Byte offset of the first failed read (buffer size bounds it); only
  // meaningful when failed().
  size_t failure_position() const { return failure_position_; }

 private:
  bool Raw(void* data, size_t bytes);
  bool Fail();
  const std::string& buffer_;
  size_t position_ = 0;
  bool failed_ = false;
  size_t failure_position_ = 0;
};

}  // namespace arecel

#endif  // ARECEL_UTIL_ARCHIVE_H_
