#ifndef ARECEL_UTIL_THREAD_POOL_H_
#define ARECEL_UTIL_THREAD_POOL_H_

#include <cstddef>
#include <functional>

namespace arecel {

// ParallelFor(begin, end, fn) runs fn(i) for i in [begin, end) across a
// process-wide pool of std::threads (hardware_concurrency workers, capped).
// Blocks until every index has been processed. fn must be safe to call
// concurrently for distinct i. Used by the ground-truth executor and the
// estimator evaluation harness where thousands of independent queries are
// labelled against multi-hundred-thousand-row tables.
void ParallelFor(size_t begin, size_t end,
                 const std::function<void(size_t)>& fn);

// Chunked variant: fn(chunk_begin, chunk_end) per contiguous slice. Lower
// dispatch overhead for cheap bodies.
void ParallelForChunked(size_t begin, size_t end,
                        const std::function<void(size_t, size_t)>& fn);

// Number of workers ParallelFor will use.
int ParallelWorkerCount();

}  // namespace arecel

#endif  // ARECEL_UTIL_THREAD_POOL_H_
