#include "util/ascii_table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace arecel {

AsciiTable::AsciiTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void AsciiTable::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string AsciiTable::ToString() const {
  const size_t cols = header_.size();
  std::vector<size_t> width(cols, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < cols && c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    out << "|";
    for (size_t c = 0; c < cols; ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      out << " " << cell << std::string(width[c] - cell.size(), ' ') << " |";
    }
    out << "\n";
  };
  emit(header_);
  out << "|";
  for (size_t c = 0; c < cols; ++c)
    out << std::string(width[c] + 2, '-') << "|";
  out << "\n";
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string FormatCompact(double value) {
  char buf[64];
  const double a = std::fabs(value);
  if (a != 0.0 && (a >= 1e4 || a < 1e-3)) {
    std::snprintf(buf, sizeof(buf), "%.1e", value);
  } else if (a >= 100.0) {
    std::snprintf(buf, sizeof(buf), "%.0f", value);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f", value);
  }
  return buf;
}

std::string FormatFixed(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

}  // namespace arecel
