#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

namespace arecel {

int ParallelWorkerCount() {
  const unsigned hw = std::thread::hardware_concurrency();
  return static_cast<int>(std::clamp(hw, 1u, 16u));
}

void ParallelForChunked(size_t begin, size_t end,
                        const std::function<void(size_t, size_t)>& fn) {
  if (begin >= end) return;
  const size_t n = end - begin;
  const int workers = ParallelWorkerCount();
  if (workers == 1 || n < 2) {
    fn(begin, end);
    return;
  }
  // Static partition into `workers` contiguous slices; the bodies we run
  // (per-query labelling, per-row scans) are uniform enough that dynamic
  // stealing is not worth the synchronization.
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(workers));
  const size_t chunk = (n + static_cast<size_t>(workers) - 1) /
                       static_cast<size_t>(workers);
  for (int w = 0; w < workers; ++w) {
    const size_t lo = begin + static_cast<size_t>(w) * chunk;
    if (lo >= end) break;
    const size_t hi = std::min(end, lo + chunk);
    threads.emplace_back([&fn, lo, hi] { fn(lo, hi); });
  }
  for (auto& t : threads) t.join();
}

void ParallelFor(size_t begin, size_t end,
                 const std::function<void(size_t)>& fn) {
  ParallelForChunked(begin, end, [&fn](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) fn(i);
  });
}

}  // namespace arecel
