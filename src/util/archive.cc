#include "util/archive.h"

#include <cstring>

namespace arecel {

namespace {
// One container may not claim more than this many elements; bounds the
// allocation a corrupt length prefix can trigger.
constexpr uint64_t kMaxElements = 1ull << 30;
}  // namespace

ByteWriter ByteWriter::Counting() {
  ByteWriter writer;
  writer.counting_only_ = true;
  return writer;
}

void ByteWriter::Raw(const void* data, size_t bytes) {
  bytes_written_ += bytes;
  if (!counting_only_)
    buffer_.append(static_cast<const char*>(data), bytes);
}

void ByteWriter::Str(const std::string& s) {
  U64(s.size());
  Raw(s.data(), s.size());
}

void ByteWriter::Floats(const std::vector<float>& v) {
  U64(v.size());
  Raw(v.data(), v.size() * sizeof(float));
}

void ByteWriter::Doubles(const std::vector<double>& v) {
  U64(v.size());
  Raw(v.data(), v.size() * sizeof(double));
}

void ByteWriter::Ints(const std::vector<int>& v) {
  U64(v.size());
  Raw(v.data(), v.size() * sizeof(int));
}

bool ByteReader::Fail() {
  if (!failed_) {
    failed_ = true;
    failure_position_ = position_;
  }
  return false;
}

bool ByteReader::Raw(void* data, size_t bytes) {
  if (failed_ || position_ + bytes > buffer_.size()) return Fail();
  std::memcpy(data, buffer_.data() + position_, bytes);
  position_ += bytes;
  return true;
}

bool ByteReader::Str(std::string* s) {
  uint64_t size = 0;
  if (!U64(&size)) return false;
  if (size > kMaxElements) return Fail();
  s->resize(size);
  return Raw(s->data(), size);
}

bool ByteReader::Floats(std::vector<float>* v) {
  uint64_t size = 0;
  if (!U64(&size)) return false;
  if (size > kMaxElements) return Fail();
  v->resize(size);
  return Raw(v->data(), size * sizeof(float));
}

bool ByteReader::Doubles(std::vector<double>* v) {
  uint64_t size = 0;
  if (!U64(&size)) return false;
  if (size > kMaxElements) return Fail();
  v->resize(size);
  return Raw(v->data(), size * sizeof(double));
}

bool ByteReader::Ints(std::vector<int>* v) {
  uint64_t size = 0;
  if (!U64(&size)) return false;
  if (size > kMaxElements) return Fail();
  v->resize(size);
  return Raw(v->data(), size * sizeof(int));
}

}  // namespace arecel
