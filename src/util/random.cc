#include "util/random.h"

#include <cmath>

#include "util/check.h"

namespace arecel {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t x = seed;
  for (int i = 0; i < 4; ++i) s_[i] = SplitMix64(x);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 random mantissa bits.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

uint64_t Rng::UniformInt(uint64_t n) {
  ARECEL_CHECK(n > 0);
  // Lemire's nearly-divisionless bounded sampling would be faster; plain
  // modulo bias is negligible for our n (<< 2^32) and simpler to audit.
  return Next() % n;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  ARECEL_CHECK(lo <= hi);
  return lo + static_cast<int64_t>(
                  UniformInt(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = Uniform();
  double u2 = Uniform();
  while (u1 <= 1e-300) u1 = Uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::Exponential(double lambda) {
  ARECEL_CHECK(lambda > 0);
  double u = Uniform();
  while (u <= 1e-300) u = Uniform();
  return -std::log(u) / lambda;
}

double Rng::SkewedUnit(double shape) {
  ARECEL_CHECK(shape >= 0);
  const double u = Uniform();
  if (shape < 1e-12) return u;
  // Power-law inverse CDF: F^{-1}(u) = u^(1 + 4*shape) concentrates uniform
  // mass toward 0 as shape grows (mean = 1 / (2 + 4*shape)). shape == 0
  // degenerates to uniform (handled above); monotone in u.
  const double v = std::pow(u, 1.0 + shape * 4.0);
  return v < 1.0 ? v : std::nextafter(1.0, 0.0);
}

uint64_t Rng::Zipf(uint64_t n, double s) {
  ARECEL_CHECK(n > 0);
  if (s <= 1e-12) return UniformInt(n);
  // Rejection-inversion (Hörmann) is overkill for our domain sizes; use
  // direct inversion over the harmonic weights with a cached normalizer for
  // small n, otherwise a two-level bucket trick. Domains here are <= 100K.
  double h = 0.0;
  for (uint64_t k = 1; k <= n; ++k) h += std::pow(static_cast<double>(k), -s);
  double u = Uniform() * h;
  double acc = 0.0;
  for (uint64_t k = 1; k <= n; ++k) {
    acc += std::pow(static_cast<double>(k), -s);
    if (acc >= u) return k - 1;
  }
  return n - 1;
}

std::vector<int> Rng::SampleWithoutReplacement(int n, int k) {
  ARECEL_CHECK(k >= 0 && k <= n);
  // Partial Fisher-Yates over an index vector.
  std::vector<int> idx(n);
  for (int i = 0; i < n; ++i) idx[i] = i;
  for (int i = 0; i < k; ++i) {
    const int j =
        i + static_cast<int>(UniformInt(static_cast<uint64_t>(n - i)));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

ZipfSampler::ZipfSampler(uint64_t n, double s) : n_(n), cdf_(n) {
  ARECEL_CHECK(n > 0);
  double acc = 0.0;
  for (uint64_t k = 0; k < n; ++k) {
    acc += std::pow(static_cast<double>(k + 1), -s);
    cdf_[k] = acc;
  }
  for (uint64_t k = 0; k < n; ++k) cdf_[k] /= acc;
  cdf_[n - 1] = 1.0;  // guard against rounding.
}

uint64_t ZipfSampler::Sample(Rng& rng) const {
  return InvertCdf(rng.Uniform());
}

uint64_t ZipfSampler::InvertCdf(double u) const {
  // Binary search for the first cdf entry >= u.
  uint64_t lo = 0, hi = n_ - 1;
  while (lo < hi) {
    const uint64_t mid = (lo + hi) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace arecel
