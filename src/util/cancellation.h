#ifndef ARECEL_UTIL_CANCELLATION_H_
#define ARECEL_UTIL_CANCELLATION_H_

#include <atomic>

namespace arecel {

// Cooperative cancellation flag shared between a watchdog and a worker.
// The watchdog calls Cancel() when a deadline passes; long-running work
// (training epoch loops, injected delays) polls cancelled() and returns
// early. Purely advisory: non-cooperative work is abandoned on its worker
// thread instead (robustness/guard.h).
class CancellationToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

}  // namespace arecel

#endif  // ARECEL_UTIL_CANCELLATION_H_
