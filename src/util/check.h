#ifndef ARECEL_UTIL_CHECK_H_
#define ARECEL_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

// ARECEL_CHECK(cond) aborts with a message when `cond` is false. It is
// enabled in all build modes: estimator code validates its invariants with
// these checks rather than exceptions (per DESIGN.md §4), so a violated
// invariant fails loudly in benches too.
#define ARECEL_CHECK(cond)                                                  \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "ARECEL_CHECK failed at %s:%d: %s\n", __FILE__,  \
                   __LINE__, #cond);                                        \
      std::abort();                                                         \
    }                                                                       \
  } while (false)

#define ARECEL_CHECK_MSG(cond, msg)                                         \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "ARECEL_CHECK failed at %s:%d: %s (%s)\n",       \
                   __FILE__, __LINE__, #cond, msg);                         \
      std::abort();                                                         \
    }                                                                       \
  } while (false)

#endif  // ARECEL_UTIL_CHECK_H_
