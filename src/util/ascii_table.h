#ifndef ARECEL_UTIL_ASCII_TABLE_H_
#define ARECEL_UTIL_ASCII_TABLE_H_

#include <string>
#include <vector>

namespace arecel {

// Renders rows of strings as an aligned, pipe-separated text table —
// the output format every bench binary uses to print its paper table or
// figure series.
class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  // Renders with a header rule. Cells are left-aligned; missing cells in a
  // short row render empty.
  std::string ToString() const;

  size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Compact number formatting used in table cells: two/three significant
// digits, switching to scientific notation for large magnitudes, mirroring
// the paper's "2·10^5"-style cells.
std::string FormatCompact(double value);

// Fixed-precision helper.
std::string FormatFixed(double value, int digits);

}  // namespace arecel

#endif  // ARECEL_UTIL_ASCII_TABLE_H_
