#ifndef ARECEL_UTIL_STATS_H_
#define ARECEL_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace arecel {

// Descriptive statistics used by the evaluation harness and the data
// generators. All functions take values by const reference and never mutate
// their input (they copy when sorting is needed).

// p-th percentile (p in [0, 100]) with linear interpolation between ranks,
// matching numpy.percentile's default. Requires a non-empty input.
double Percentile(const std::vector<double>& values, double p);

// Convenience: {50th, 95th, 99th, max} of `values` — the four columns the
// paper's Table 4 reports per dataset. An empty input yields the all-zero
// summary (degenerate workloads must not abort the evaluation harness).
struct QuantileSummary {
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
  double max = 0;
};
QuantileSummary Summarize(const std::vector<double>& values);

double Mean(const std::vector<double>& values);
double GeometricMean(const std::vector<double>& values);  // requires > 0.
double Variance(const std::vector<double>& values);       // population var.
double StdDev(const std::vector<double>& values);

// Pearson linear correlation of two equal-length vectors. Returns 0 when
// either side is constant.
double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y);

// Spearman rank correlation (Pearson over fractional ranks, ties averaged).
// This is the statistic the paper maximizes when constructing the dynamic-
// environment data update (§5.1: sorted-copy append).
double SpearmanCorrelation(const std::vector<double>& x,
                           const std::vector<double>& y);

// Fractional ranks (1-based, ties share the average rank).
std::vector<double> Ranks(const std::vector<double>& values);

// Returns the top `fraction` (e.g. 0.01) largest values, sorted ascending —
// the "top 1% q-error distribution" used by Figures 9 and 10.
std::vector<double> TopFraction(const std::vector<double>& values,
                                double fraction);

// Five-number box-plot summary (min, q1, median, q3, max) of `values`.
struct BoxStats {
  double min = 0, q1 = 0, median = 0, q3 = 0, max = 0;
};
BoxStats Box(const std::vector<double>& values);

}  // namespace arecel

#endif  // ARECEL_UTIL_STATS_H_
