#ifndef ARECEL_UTIL_CRC32C_H_
#define ARECEL_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace arecel {

// CRC-32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78) — the
// checksum guarding every model-store record and manifest (src/store/).
// Castagnoli is the standard storage-integrity choice (iSCSI, ext4, LevelDB)
// because its error-detection properties on burst errors beat CRC-32's;
// software slice-by-8 keeps it fast without ISA-specific instructions.

// CRC of `size` bytes starting at `data`, continuing from `seed` (pass 0 to
// start a fresh checksum; chain calls by passing the previous result).
uint32_t Crc32c(const void* data, size_t size, uint32_t seed = 0);

inline uint32_t Crc32c(const std::string& bytes, uint32_t seed = 0) {
  return Crc32c(bytes.data(), bytes.size(), seed);
}

// Masked form (the LevelDB trick): storing a CRC of data that itself
// embeds CRCs makes accidental collisions likelier; the store writes the
// masked value on disk and unmasks on read.
inline uint32_t MaskCrc32c(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}
inline uint32_t UnmaskCrc32c(uint32_t masked) {
  const uint32_t rot = masked - 0xa282ead8u;
  return (rot << 15) | (rot >> 17);
}

}  // namespace arecel

#endif  // ARECEL_UTIL_CRC32C_H_
