#ifndef ARECEL_JOIN_JOIN_EXECUTOR_H_
#define ARECEL_JOIN_JOIN_EXECUTOR_H_

#include <cstddef>
#include <vector>

#include "data/schema.h"
#include "scan/block_scan.h"
#include "scan/synopsis.h"
#include "workload/join_query.h"

namespace arecel::join {

// Exact ground-truth execution of star join queries (DESIGN.md §13).
//
// The executor decomposes a JoinQuery into one probe table (the star's
// center — the table every join edge touches) and one build side per other
// table, then runs a textbook build-side hash join:
//  1. each build table is scanned with its per-table predicates through the
//     block-scan cascade (zone-map, dictionary-bitmap and mini-histogram
//     pruning included, shared with BlockScanner via scan::ScanPlan), and
//     the surviving rows' key values feed an open-addressing hash table of
//     key -> multiplicity;
//  2. the probe table is scanned the same way with its own predicates; each
//     surviving row contributes the product of its key lookups across the
//     build tables.
// With PK–FK integrity every multiplicity is 0 or 1, but the executor is
// deliberately general (duplicate build keys multiply), so the
// nested-loop reference below is a true differential oracle for fan-out
// cases too. Counts are exact integers, bit-identical to the reference by
// construction; tests/join_executor_test.cc enforces that differentially.
struct JoinExecOptions {
  size_t block_size = scan::kDefaultBlockSize;
};

class JoinExecutor {
 public:
  // The schema must outlive the executor (synopses point into its tables).
  explicit JoinExecutor(const Schema& schema, JoinExecOptions options = {});

  // Exact COUNT(*) of `query`. Aborts on malformed queries (unknown
  // tables, non-star join graphs, out-of-range columns).
  size_t Count(const JoinQuery& query) const;

  // Count / product of participating table row counts, in [0, 1]; 0 when
  // any participating table is empty.
  double Selectivity(const JoinQuery& query) const;

  // Batch labeling, parallelized over queries (each Count is a pure read).
  std::vector<size_t> CountBatch(const std::vector<JoinQuery>& queries) const;
  std::vector<double> Label(const std::vector<JoinQuery>& queries) const;

  // Cartesian-product denominator of `query` over `schema`.
  static double RowsProduct(const Schema& schema, const JoinQuery& query);

  // Cumulative build/probe-side pruning counters across every Count call.
  scan::ScanStats scan_stats() const { return stats_.Snapshot(); }

  // Total heap footprint of all per-table synopses, in bytes.
  size_t SynopsisSizeBytes() const;

 private:
  const Schema* schema_;
  JoinExecOptions options_;
  std::vector<scan::TableSynopsis> synopses_;  // aligned with schema tables.
  mutable scan::ScanStatsCollector stats_;
};

// One-shot conveniences (no synopsis amortization across queries).
size_t ExecuteJoinCount(const Schema& schema, const JoinQuery& query);
double ExecuteJoinSelectivity(const Schema& schema, const JoinQuery& query);
std::vector<double> LabelJoinQueries(const Schema& schema,
                                     const std::vector<JoinQuery>& queries);

// Differential oracle: row-at-a-time nested loops over the same star
// decomposition, with Predicate::Matches as the interval oracle and plain
// double equality as the join condition. Shares no scan or hash machinery
// with JoinExecutor — the "naive" side of the differential suite and of
// bench_join.
size_t ExecuteJoinCountNaive(const Schema& schema, const JoinQuery& query);

}  // namespace arecel::join

#endif  // ARECEL_JOIN_JOIN_EXECUTOR_H_
