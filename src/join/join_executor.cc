#include "join/join_executor.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <unordered_set>

#include "scan/block_scan.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace arecel::join {
namespace {

// ---------------------------------------------------------------------------
// Star decomposition, shared by the hash executor and the nested-loop oracle.

struct BuildSide {
  const Table* table = nullptr;
  int table_index = -1;  // into schema.tables(), for synopsis lookup.
  int probe_column = 0;  // join column on the probe table.
  int build_column = 0;  // join column on this build table.
  const std::vector<Predicate>* predicates = nullptr;
};

struct StarPlan {
  const Table* probe = nullptr;
  int probe_index = -1;
  const std::vector<Predicate>* probe_predicates = nullptr;
  std::vector<BuildSide> builds;
};

void CheckSliceColumns(const Table& table, const TableSlice& slice) {
  for (const Predicate& p : slice.predicates) {
    ARECEL_CHECK_MSG(p.column >= 0 &&
                         static_cast<size_t>(p.column) < table.num_cols(),
                     "join predicate column out of range");
  }
}

StarPlan BuildStarPlan(const Schema& schema, const JoinQuery& query) {
  ARECEL_CHECK_MSG(!query.tables.empty(), "join query has no tables");
  std::unordered_set<std::string> seen;
  for (const TableSlice& slice : query.tables) {
    ARECEL_CHECK_MSG(seen.insert(slice.table).second,
                     "table repeated in join query");
    const Table* t = schema.FindTable(slice.table);
    ARECEL_CHECK_MSG(t != nullptr, slice.table.c_str());
    CheckSliceColumns(*t, slice);
  }

  StarPlan plan;
  if (query.tables.size() == 1) {
    ARECEL_CHECK_MSG(query.joins.empty(),
                     "single-table join query must have no edges");
    plan.probe = &schema.table(query.tables[0].table);
    plan.probe_index = schema.TableIndex(query.tables[0].table);
    plan.probe_predicates = &query.tables[0].predicates;
    return plan;
  }

  ARECEL_CHECK_MSG(query.joins.size() == query.tables.size() - 1,
                   "star join requires exactly n-1 edges");
  // The probe (star center) is the table that every edge touches.
  std::string center;
  for (const std::string& candidate :
       {query.joins[0].left_table, query.joins[0].right_table}) {
    bool on_all = true;
    for (const JoinEdge& e : query.joins) {
      if (e.left_table != candidate && e.right_table != candidate) {
        on_all = false;
        break;
      }
    }
    if (on_all) {
      center = candidate;
      break;
    }
  }
  ARECEL_CHECK_MSG(!center.empty(), "join graph is not a star");
  ARECEL_CHECK_MSG(query.FindTable(center) != nullptr,
                   "star center missing from query tables");
  plan.probe = &schema.table(center);
  plan.probe_index = schema.TableIndex(center);
  plan.probe_predicates = &query.FindTable(center)->predicates;

  std::unordered_set<std::string> covered;
  for (const JoinEdge& e : query.joins) {
    const bool center_left = e.left_table == center;
    BuildSide side;
    const std::string& other = center_left ? e.right_table : e.left_table;
    ARECEL_CHECK_MSG(other != center, "self-join edges are unsupported");
    ARECEL_CHECK_MSG(covered.insert(other).second,
                     "table joined by more than one edge");
    const TableSlice* slice = query.FindTable(other);
    ARECEL_CHECK_MSG(slice != nullptr, other.c_str());
    side.table = &schema.table(other);
    side.table_index = schema.TableIndex(other);
    side.probe_column = center_left ? e.left_column : e.right_column;
    side.build_column = center_left ? e.right_column : e.left_column;
    side.predicates = &slice->predicates;
    ARECEL_CHECK_MSG(
        side.probe_column >= 0 && static_cast<size_t>(side.probe_column) <
                                      plan.probe->num_cols(),
        "join edge column out of range on probe side");
    ARECEL_CHECK_MSG(
        side.build_column >= 0 && static_cast<size_t>(side.build_column) <
                                      side.table->num_cols(),
        "join edge column out of range on build side");
    plan.builds.push_back(side);
  }
  return plan;
}

// ---------------------------------------------------------------------------
// Open-addressing key -> multiplicity table over double join keys.

uint64_t KeyBits(double v) {
  if (v == 0.0) v = 0.0;  // collapse -0.0 onto +0.0, matching operator==.
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

uint64_t MixBits(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

class KeyCountTable {
 public:
  explicit KeyCountTable(size_t expected) {
    size_t cap = 16;
    while (cap < 2 * expected + 1) cap <<= 1;
    keys_.assign(cap, 0);
    counts_.assign(cap, 0);  // count 0 == empty slot.
    mask_ = cap - 1;
  }

  void Add(double v) {
    if (std::isnan(v)) return;  // NaN joins with nothing.
    const uint64_t bits = KeyBits(v);
    size_t slot = MixBits(bits) & mask_;
    while (counts_[slot] != 0 && keys_[slot] != bits) {
      slot = (slot + 1) & mask_;
    }
    keys_[slot] = bits;
    ++counts_[slot];
    ++size_;
  }

  size_t Lookup(double v) const {
    if (std::isnan(v)) return 0;
    const uint64_t bits = KeyBits(v);
    size_t slot = MixBits(bits) & mask_;
    while (counts_[slot] != 0) {
      if (keys_[slot] == bits) return counts_[slot];
      slot = (slot + 1) & mask_;
    }
    return 0;
  }

  size_t size() const { return size_; }

 private:
  std::vector<uint64_t> keys_;
  std::vector<size_t> counts_;
  size_t mask_ = 0;
  size_t size_ = 0;  // total multiplicity inserted.
};

// ---------------------------------------------------------------------------
// Predicate-filtered block iteration, delegated to the block-scan engine's
// compiled cascade (zone maps -> dictionary bitmaps / mini-histograms ->
// selection vectors -> code or double kernels).

// Calls fn(row) for every row of `table` that satisfies `preds`.
template <typename Fn>
void ForEachMatch(const Table& table, const scan::TableSynopsis& syn,
                  const std::vector<Predicate>& preds, scan::ScanStats* stats,
                  Fn&& fn) {
  const size_t rows = table.num_rows();
  if (rows == 0) return;
  ARECEL_CHECK(rows <= std::numeric_limits<uint32_t>::max());
  const scan::ScanPlan plan(table, &syn, preds);
  if (!plan.satisfiable()) return;
  if (plan.unconstrained()) {
    for (uint32_t r = 0; r < rows; ++r) fn(r);
    return;
  }
  const size_t block_size = syn.block_size();
  std::vector<uint32_t> sel(block_size);
  for (size_t block = 0; block < syn.num_blocks(); ++block) {
    const uint32_t begin = static_cast<uint32_t>(block * block_size);
    const uint32_t end = static_cast<uint32_t>(
        std::min(rows, (block + 1) * block_size));
    switch (plan.Classify(block, stats)) {
      case scan::BlockDecision::kSkip:
        break;
      case scan::BlockDecision::kFullMatch:
        for (uint32_t r = begin; r < end; ++r) fn(r);
        break;
      case scan::BlockDecision::kEvaluate: {
        const size_t n = plan.FilterBlock(block, begin, end, sel.data(), stats);
        for (size_t i = 0; i < n; ++i) fn(sel[i]);
        break;
      }
    }
  }
}

size_t HashJoinCount(const Schema& schema, const JoinQuery& query,
                     const std::vector<scan::TableSynopsis>& synopses,
                     scan::ScanStats* stats) {
  if (!query.IsSatisfiable()) return 0;
  const StarPlan plan = BuildStarPlan(schema, query);
  if (plan.probe->num_rows() == 0) return 0;
  for (const BuildSide& side : plan.builds) {
    if (side.table->num_rows() == 0) return 0;
  }

  // Build one key -> multiplicity table per dimension.
  std::vector<KeyCountTable> hashes;
  hashes.reserve(plan.builds.size());
  for (const BuildSide& side : plan.builds) {
    KeyCountTable hash(side.table->num_rows());
    const double* keys =
        side.table->column(static_cast<size_t>(side.build_column))
            .values.data();
    ForEachMatch(*side.table, synopses[static_cast<size_t>(side.table_index)],
                 *side.predicates, stats,
                 [&](uint32_t r) { hash.Add(keys[r]); });
    if (hash.size() == 0) return 0;  // a dimension filtered to nothing.
    hashes.push_back(std::move(hash));
  }

  // Probe: each surviving row contributes the product of its key
  // multiplicities across the build tables.
  std::vector<const double*> probe_keys;
  probe_keys.reserve(plan.builds.size());
  for (const BuildSide& side : plan.builds) {
    probe_keys.push_back(
        plan.probe->column(static_cast<size_t>(side.probe_column))
            .values.data());
  }
  size_t total = 0;
  ForEachMatch(*plan.probe, synopses[static_cast<size_t>(plan.probe_index)],
               *plan.probe_predicates, stats, [&](uint32_t r) {
                 size_t contribution = 1;
                 for (size_t b = 0; b < hashes.size(); ++b) {
                   contribution *= hashes[b].Lookup(probe_keys[b][r]);
                   if (contribution == 0) return;
                 }
                 total += contribution;
               });
  return total;
}

}  // namespace

JoinExecutor::JoinExecutor(const Schema& schema, JoinExecOptions options)
    : schema_(&schema), options_(options) {
  ARECEL_CHECK(options_.block_size > 0);
  synopses_.reserve(schema.num_tables());
  for (const Table& t : schema.tables()) {
    synopses_.emplace_back(t, options_.block_size);
  }
}

size_t JoinExecutor::Count(const JoinQuery& query) const {
  scan::ScanStats local;
  const size_t count = HashJoinCount(*schema_, query, synopses_, &local);
  stats_.Merge(local);
  return count;
}

double JoinExecutor::Selectivity(const JoinQuery& query) const {
  const double denom = RowsProduct(*schema_, query);
  if (!(denom > 0.0)) return 0.0;
  return static_cast<double>(Count(query)) / denom;
}

std::vector<size_t> JoinExecutor::CountBatch(
    const std::vector<JoinQuery>& queries) const {
  std::vector<size_t> counts(queries.size(), 0);
  ParallelFor(0, queries.size(),
              [&](size_t i) { counts[i] = Count(queries[i]); });
  return counts;
}

std::vector<double> JoinExecutor::Label(
    const std::vector<JoinQuery>& queries) const {
  std::vector<double> labels(queries.size(), 0.0);
  ParallelFor(0, queries.size(),
              [&](size_t i) { labels[i] = Selectivity(queries[i]); });
  return labels;
}

size_t JoinExecutor::SynopsisSizeBytes() const {
  size_t total = 0;
  for (const scan::TableSynopsis& syn : synopses_) total += syn.SizeBytes();
  return total;
}

double JoinExecutor::RowsProduct(const Schema& schema,
                                 const JoinQuery& query) {
  double product = 1.0;
  for (const TableSlice& slice : query.tables) {
    product *= static_cast<double>(schema.table(slice.table).num_rows());
  }
  return product;
}

size_t ExecuteJoinCount(const Schema& schema, const JoinQuery& query) {
  return JoinExecutor(schema).Count(query);
}

double ExecuteJoinSelectivity(const Schema& schema, const JoinQuery& query) {
  return JoinExecutor(schema).Selectivity(query);
}

std::vector<double> LabelJoinQueries(const Schema& schema,
                                     const std::vector<JoinQuery>& queries) {
  return JoinExecutor(schema).Label(queries);
}

size_t ExecuteJoinCountNaive(const Schema& schema, const JoinQuery& query) {
  if (!query.IsSatisfiable()) return 0;
  const StarPlan plan = BuildStarPlan(schema, query);
  auto row_matches = [](const Table& table,
                        const std::vector<Predicate>& preds, size_t row) {
    for (const Predicate& p : preds) {
      if (!p.Matches(
              table.column(static_cast<size_t>(p.column)).values[row])) {
        return false;
      }
    }
    return true;
  };
  size_t total = 0;
  for (size_t r = 0; r < plan.probe->num_rows(); ++r) {
    if (!row_matches(*plan.probe, *plan.probe_predicates, r)) continue;
    size_t contribution = 1;
    for (const BuildSide& side : plan.builds) {
      const double probe_value =
          plan.probe->column(static_cast<size_t>(side.probe_column))
              .values[r];
      size_t matches = 0;
      for (size_t s = 0; s < side.table->num_rows(); ++s) {
        const double build_value =
            side.table->column(static_cast<size_t>(side.build_column))
                .values[s];
        if (build_value == probe_value &&
            row_matches(*side.table, *side.predicates, s)) {
          ++matches;
        }
      }
      contribution *= matches;
      if (contribution == 0) break;
    }
    total += contribution;
  }
  return total;
}

}  // namespace arecel::join
