#include "estimators/learned/dqm.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/random.h"

namespace arecel {

void DqmDEstimator::RunEpochs(const Table& table, int epochs, uint64_t seed) {
  const size_t n = table.num_cols();
  std::vector<int32_t> all_codes;
  EncodeRowsWithBinnings(table, binnings_, &all_codes);
  const size_t rows = table.num_rows();

  Rng rng(seed);
  const size_t train_rows = std::min(rows, options_.max_train_rows);
  std::vector<size_t> order(rows);
  for (size_t i = 0; i < rows; ++i) order[i] = i;

  const size_t batch = std::min(options_.batch_size, train_rows);
  std::vector<int32_t> batch_codes(batch * n);
  for (int epoch = 0; epoch < epochs; ++epoch) {
    rng.Shuffle(order);
    double epoch_nll = 0.0;
    size_t steps = 0;
    for (size_t start = 0; start + batch <= train_rows; start += batch) {
      for (size_t b = 0; b < batch; ++b) {
        const size_t row = order[start + b];
        std::copy(&all_codes[row * n], &all_codes[row * n] + n,
                  &batch_codes[b * n]);
      }
      epoch_nll +=
          model_->TrainStep(batch_codes, batch, options_.learning_rate);
      ++steps;
    }
    if (steps > 0) final_loss_ = epoch_nll / static_cast<double>(steps);
  }
}

void DqmDEstimator::Train(const Table& table, const TrainContext& context) {
  binnings_ = BuildColumnBinnings(table, options_.max_vocab);
  std::vector<int> vocabs;
  vocabs.reserve(table.num_cols());
  for (const auto& binning : binnings_) vocabs.push_back(binning.num_bins());
  ResMadeBackboneOptions model_options;
  model_options.hidden_units = options_.hidden_units;
  model_options.num_blocks = options_.num_blocks;
  model_options.seed = context.seed;
  model_ = MakeResMadeModel(std::move(vocabs), model_options);
  RunEpochs(table, options_.epochs, context.seed + 1);
}

void DqmDEstimator::Update(const Table& table, const UpdateContext& context) {
  ARECEL_CHECK_MSG(model_ != nullptr, "Train() must run before Update()");
  const int epochs =
      context.epochs > 0 ? context.epochs : options_.update_epochs;
  RunEpochs(table, epochs, context.seed);
}

void DqmDEstimator::JointProbabilities(
    const std::vector<int32_t>& codes, size_t batch,
    std::vector<double>* probabilities) const {
  const size_t n = binnings_.size();
  probabilities->assign(batch, 1.0);
  Matrix logits;
  for (size_t c = 0; c < n; ++c) {
    model_->ColumnLogits(codes, batch, c, &logits);
    const size_t vocab = static_cast<size_t>(binnings_[c].num_bins());
    for (size_t s = 0; s < batch; ++s) {
      const float* row = logits.Row(s);
      float max_v = row[0];
      for (size_t v = 1; v < vocab; ++v) max_v = std::max(max_v, row[v]);
      double sum = 0.0;
      for (size_t v = 0; v < vocab; ++v)
        sum += std::exp(static_cast<double>(row[v] - max_v));
      const size_t code = static_cast<size_t>(codes[s * n + c]);
      const double p =
          std::exp(static_cast<double>(row[code] - max_v)) / sum;
      (*probabilities)[s] *= p;
    }
  }
}

double DqmDEstimator::EstimateSelectivity(const Query& query) const {
  ARECEL_CHECK_MSG(model_ != nullptr, "Train() must run first");
  const size_t n = binnings_.size();

  // Per-column allowed bin ranges.
  std::vector<std::pair<int, int>> ranges(n);
  for (size_t c = 0; c < n; ++c)
    ranges[c] = {0, binnings_[c].num_bins() - 1};
  for (const Predicate& p : query.predicates) {
    const size_t c = static_cast<size_t>(p.column);
    const auto [first, last] = binnings_[c].Range(p.lo, p.hi);
    ranges[c].first = std::max(ranges[c].first, first);
    ranges[c].second = std::min(ranges[c].second, last);
    if (ranges[c].first > ranges[c].second) return 0.0;
  }

  const uint64_t draw =
      options_.pin_sampling_seed ? 0x13572468u : estimate_counter_++;
  Rng rng(0xd1342543de82ef95ULL ^ (draw * 0x9e3779b97f4a7c15ULL));

  // VEGAS: independent per-column proposals over the allowed bins,
  // refined toward sqrt(E[w^2 | bin]) after every stage.
  std::vector<std::vector<double>> proposal(n);
  for (size_t c = 0; c < n; ++c) {
    const int width = ranges[c].second - ranges[c].first + 1;
    proposal[c].assign(static_cast<size_t>(width),
                       1.0 / static_cast<double>(width));
  }

  const size_t samples = static_cast<size_t>(options_.stage_samples);
  std::vector<int32_t> codes(samples * n, 0);
  std::vector<double> densities(samples);
  std::vector<double> joint(samples);
  double estimate = 0.0;
  for (int stage = 0; stage < options_.stages; ++stage) {
    // Draw stage points from the current proposal.
    for (size_t s = 0; s < samples; ++s) {
      double density = 1.0;
      for (size_t c = 0; c < n; ++c) {
        const std::vector<double>& q = proposal[c];
        double target = rng.Uniform();
        size_t chosen = q.size() - 1;
        for (size_t b = 0; b < q.size(); ++b) {
          target -= q[b];
          if (target <= 0.0) {
            chosen = b;
            break;
          }
        }
        codes[s * n + c] =
            static_cast<int32_t>(ranges[c].first) +
            static_cast<int32_t>(chosen);
        density *= q[chosen];
      }
      densities[s] = density;
    }
    JointProbabilities(codes, samples, &joint);

    // Importance weights and the stage estimate.
    double stage_total = 0.0;
    for (size_t s = 0; s < samples; ++s)
      stage_total += joint[s] / densities[s];
    estimate = stage_total / static_cast<double>(samples);

    if (stage + 1 == options_.stages) break;

    // VEGAS refinement: per column, accumulate w^2 per sampled bin and move
    // the proposal toward the square root of that contribution.
    for (size_t c = 0; c < n; ++c) {
      std::vector<double>& q = proposal[c];
      std::vector<double> contribution(q.size(), 0.0);
      for (size_t s = 0; s < samples; ++s) {
        const double w = joint[s] / densities[s];
        const size_t b = static_cast<size_t>(
            codes[s * n + c] - static_cast<int32_t>(ranges[c].first));
        contribution[b] += w * w;
      }
      double total = 0.0;
      for (double& v : contribution) {
        v = std::sqrt(v);
        total += v;
      }
      if (total <= 0.0) continue;  // dead region; keep the old proposal.
      for (size_t b = 0; b < q.size(); ++b) {
        const double refined = contribution[b] / total;
        // Damping keeps some mass everywhere (proposal must dominate the
        // integrand for unbiasedness).
        q[b] = options_.vegas_damping * q[b] +
               (1.0 - options_.vegas_damping) * refined;
        q[b] = std::max(q[b], 1e-6);
      }
      double norm = 0.0;
      for (double v : q) norm += v;
      for (double& v : q) v /= norm;
    }
  }
  return std::clamp(estimate, 0.0, 1.0);
}

size_t DqmDEstimator::SizeBytes() const {
  size_t binning_bytes = 0;
  for (const auto& binning : binnings_)
    binning_bytes += 2 * binning.bin_min.size() * sizeof(double);
  return (model_ ? model_->ParamCount() * sizeof(float) : 0) + binning_bytes;
}

}  // namespace arecel
