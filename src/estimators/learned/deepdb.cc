#include "estimators/learned/deepdb.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <map>

#include "ml/kmeans.h"
#include "ml/rdc.h"
#include "util/check.h"
#include "util/random.h"

namespace arecel {

// SPN node. A leaf keeps an exact value->count histogram of one column; a
// product multiplies children over disjoint column groups; a sum mixes row
// clusters weighted by their row counts.
struct DeepDbEstimator::Node {
  enum class Type { kSum, kProduct, kLeaf };
  Type type = Type::kLeaf;
  size_t row_count = 0;

  // Sum / product children.
  std::vector<std::unique_ptr<Node>> children;
  // Sum only: cluster centers in normalized column space, aligned with
  // children; `sum_cols` lists the columns the centers are expressed in.
  std::vector<std::vector<double>> centers;
  std::vector<int> sum_cols;

  // Leaf only.
  int column = -1;
  std::vector<double> values;   // sorted distinct values.
  std::vector<double> counts;   // aligned with values.
};

DeepDbEstimator::DeepDbEstimator() : DeepDbEstimator(Options()) {}
DeepDbEstimator::DeepDbEstimator(Options options)
    : options_(std::move(options)) {}
DeepDbEstimator::~DeepDbEstimator() = default;

namespace {

// Fraction of leaf mass inside [lo, hi].
double LeafRange(const DeepDbEstimator::Node& leaf, double lo, double hi);

}  // namespace

std::unique_ptr<DeepDbEstimator::Node> DeepDbEstimator::BuildLeaf(
    const Table& table, const std::vector<uint32_t>& rows, int col) {
  auto node = std::make_unique<Node>();
  node->type = Node::Type::kLeaf;
  node->column = col;
  node->row_count = rows.size();
  std::map<double, double> histogram;
  const auto& column_values = table.column(static_cast<size_t>(col)).values;
  for (uint32_t r : rows) histogram[column_values[r]] += 1.0;
  node->values.reserve(histogram.size());
  node->counts.reserve(histogram.size());
  for (const auto& [v, c] : histogram) {
    node->values.push_back(v);
    node->counts.push_back(c);
  }
  return node;
}

std::unique_ptr<DeepDbEstimator::Node>
DeepDbEstimator::BuildIndependentProduct(const Table& table,
                                         const std::vector<uint32_t>& rows,
                                         const std::vector<int>& cols) {
  auto node = std::make_unique<Node>();
  node->type = Node::Type::kProduct;
  node->row_count = rows.size();
  for (int c : cols) node->children.push_back(BuildLeaf(table, rows, c));
  return node;
}

std::unique_ptr<DeepDbEstimator::Node> DeepDbEstimator::Build(
    const Table& table, const std::vector<uint32_t>& rows,
    const std::vector<int>& cols, int depth, uint64_t seed) {
  ARECEL_CHECK(!cols.empty());
  if (cols.size() == 1) return BuildLeaf(table, rows, cols[0]);
  if (rows.size() <= min_instance_rows_ || depth >= options_.max_depth) {
    // Minimum instance slice reached: assume independence.
    return BuildIndependentProduct(table, rows, cols);
  }

  Rng rng(seed);

  // --- Column split attempt: pairwise RDC on a row subsample. ---
  std::vector<uint32_t> rdc_rows = rows;
  if (rdc_rows.size() > options_.rdc_sample_rows) {
    rng.Shuffle(rdc_rows);
    rdc_rows.resize(options_.rdc_sample_rows);
  }
  const size_t k = cols.size();
  // Union-find over columns: join pairs with RDC >= threshold.
  std::vector<size_t> parent(k);
  for (size_t i = 0; i < k; ++i) parent[i] = i;
  auto find = [&](size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  std::vector<double> xi(rdc_rows.size()), yi(rdc_rows.size());
  for (size_t a = 0; a < k; ++a) {
    for (size_t b = a + 1; b < k; ++b) {
      if (find(a) == find(b)) continue;
      const auto& col_a = table.column(static_cast<size_t>(cols[a])).values;
      const auto& col_b = table.column(static_cast<size_t>(cols[b])).values;
      for (size_t i = 0; i < rdc_rows.size(); ++i) {
        xi[i] = col_a[rdc_rows[i]];
        yi[i] = col_b[rdc_rows[i]];
      }
      const double rdc = Rdc(xi, yi, /*num_features=*/5, /*sigma=*/1.0,
                             seed + a * 131 + b);
      if (rdc >= options_.rdc_threshold) parent[find(a)] = find(b);
    }
  }
  std::map<size_t, std::vector<int>> groups;
  for (size_t i = 0; i < k; ++i) groups[find(i)].push_back(cols[i]);
  if (groups.size() > 1) {
    auto node = std::make_unique<Node>();
    node->type = Node::Type::kProduct;
    node->row_count = rows.size();
    int child_index = 0;
    for (const auto& [root, group] : groups) {
      node->children.push_back(Build(table, rows, group, depth + 1,
                                     seed * 31 + 7 +
                                         static_cast<uint64_t>(child_index)));
      ++child_index;
    }
    return node;
  }

  // --- Row split: k-means over normalized column values. ---
  auto normalize_row = [&](uint32_t r) {
    std::vector<double> point(cols.size());
    for (size_t i = 0; i < cols.size(); ++i) {
      const size_t c = static_cast<size_t>(cols[i]);
      const double span = std::max(col_max_[c] - col_min_[c], 1e-12);
      point[i] = (table.column(c).values[r] - col_min_[c]) / span;
    }
    return point;
  };
  std::vector<uint32_t> km_rows = rows;
  if (km_rows.size() > options_.kmeans_sample_rows) {
    rng.Shuffle(km_rows);
    km_rows.resize(options_.kmeans_sample_rows);
  }
  std::vector<std::vector<double>> points(km_rows.size());
  for (size_t i = 0; i < km_rows.size(); ++i)
    points[i] = normalize_row(km_rows[i]);
  const KMeansResult km =
      KMeans(points, options_.kmeans_k, /*max_iterations=*/20, seed + 5);

  // Assign every row of this slice to its nearest center.
  std::vector<std::vector<uint32_t>> cluster_rows(km.centers.size());
  for (uint32_t r : rows) {
    const int a = NearestCenter(km.centers, normalize_row(r));
    cluster_rows[static_cast<size_t>(a)].push_back(r);
  }
  // Degenerate split (all rows in one cluster): fall back to independence
  // to guarantee termination.
  size_t non_empty = 0;
  for (const auto& cr : cluster_rows)
    if (!cr.empty()) ++non_empty;
  if (non_empty <= 1) return BuildIndependentProduct(table, rows, cols);

  auto node = std::make_unique<Node>();
  node->type = Node::Type::kSum;
  node->row_count = rows.size();
  node->sum_cols = cols;
  for (size_t c = 0; c < cluster_rows.size(); ++c) {
    if (cluster_rows[c].empty()) continue;
    node->centers.push_back(km.centers[c]);
    node->children.push_back(Build(table, cluster_rows[c], cols, depth + 1,
                                   seed * 131 + 17 + c));
  }
  return node;
}

void DeepDbEstimator::Train(const Table& table, const TrainContext& context) {
  total_rows_ = table.num_rows();
  min_instance_rows_ = std::max<size_t>(
      64, static_cast<size_t>(static_cast<double>(total_rows_) *
                              options_.min_instance_fraction));
  col_min_.resize(table.num_cols());
  col_max_.resize(table.num_cols());
  for (size_t c = 0; c < table.num_cols(); ++c) {
    col_min_[c] = table.column(c).min();
    col_max_[c] = table.column(c).max();
  }
  std::vector<uint32_t> rows(table.num_rows());
  for (size_t r = 0; r < rows.size(); ++r) rows[r] = static_cast<uint32_t>(r);
  std::vector<int> cols(table.num_cols());
  for (size_t c = 0; c < cols.size(); ++c) cols[c] = static_cast<int>(c);
  root_ = Build(table, rows, cols, /*depth=*/0, context.seed);
}

namespace {

double LeafRange(const DeepDbEstimator::Node& leaf, double lo, double hi) {
  if (leaf.row_count == 0) return 0.0;
  const auto begin = std::lower_bound(leaf.values.begin(), leaf.values.end(),
                                      lo);
  const auto end =
      std::upper_bound(leaf.values.begin(), leaf.values.end(), hi);
  double mass = 0.0;
  for (auto it = begin; it != end; ++it)
    mass += leaf.counts[static_cast<size_t>(it - leaf.values.begin())];
  return mass / static_cast<double>(leaf.row_count);
}

}  // namespace

double DeepDbEstimator::Probability(const Node& node,
                                    const Query& query) const {
  switch (node.type) {
    case Node::Type::kLeaf: {
      double lo = -std::numeric_limits<double>::infinity();
      double hi = std::numeric_limits<double>::infinity();
      bool constrained = false;
      for (const Predicate& p : query.predicates) {
        if (p.column == node.column) {
          lo = std::max(lo, p.lo);
          hi = std::min(hi, p.hi);
          constrained = true;
        }
      }
      if (!constrained) return 1.0;
      if (lo > hi) return 0.0;
      return LeafRange(node, lo, hi);
    }
    case Node::Type::kProduct: {
      double p = 1.0;
      for (const auto& child : node.children) p *= Probability(*child, query);
      return p;
    }
    case Node::Type::kSum: {
      double p = 0.0;
      for (const auto& child : node.children) {
        const double w = static_cast<double>(child->row_count) /
                         static_cast<double>(node.row_count);
        p += w * Probability(*child, query);
      }
      return p;
    }
  }
  return 0.0;
}

double DeepDbEstimator::EstimateSelectivity(const Query& query) const {
  ARECEL_CHECK_MSG(root_ != nullptr, "Train() must run first");
  if (!query.IsSatisfiable()) return 0.0;
  return std::clamp(Probability(*root_, query), 0.0, 1.0);
}

void DeepDbEstimator::Insert(Node& node,
                             const std::vector<double>& row_values) {
  ++node.row_count;
  switch (node.type) {
    case Node::Type::kLeaf: {
      const double v = row_values[static_cast<size_t>(node.column)];
      const auto it =
          std::lower_bound(node.values.begin(), node.values.end(), v);
      const size_t idx = static_cast<size_t>(it - node.values.begin());
      if (it != node.values.end() && *it == v) {
        node.counts[idx] += 1.0;
      } else {
        node.values.insert(it, v);
        node.counts.insert(node.counts.begin() + static_cast<long>(idx), 1.0);
      }
      return;
    }
    case Node::Type::kProduct: {
      for (auto& child : node.children) Insert(*child, row_values);
      return;
    }
    case Node::Type::kSum: {
      std::vector<double> point(node.sum_cols.size());
      for (size_t i = 0; i < node.sum_cols.size(); ++i) {
        const size_t c = static_cast<size_t>(node.sum_cols[i]);
        const double span = std::max(col_max_[c] - col_min_[c], 1e-12);
        point[i] = (row_values[c] - col_min_[c]) / span;
      }
      const int a = NearestCenter(node.centers, point);
      Insert(*node.children[static_cast<size_t>(a)], row_values);
      return;
    }
  }
}

void DeepDbEstimator::Update(const Table& table,
                             const UpdateContext& context) {
  ARECEL_CHECK_MSG(root_ != nullptr, "Train() must run before Update()");
  ARECEL_CHECK(context.old_row_count <= table.num_rows());
  const size_t appended = table.num_rows() - context.old_row_count;
  // Insert a small sample of the appended rows, scaled back up: DeepDB's
  // incremental update inserts a 1% sample; to keep the mixture weights in
  // proportion we insert each sampled row `1/fraction` times (equivalent to
  // weighting, since inserts only bump counts).
  const size_t sample = std::max<size_t>(
      1, static_cast<size_t>(static_cast<double>(appended) *
                             options_.update_sample_fraction));
  Rng rng(context.seed);
  const int repeat = static_cast<int>(std::max(
      1.0, std::round(1.0 / options_.update_sample_fraction)));
  std::vector<double> row_values(table.num_cols());
  for (size_t i = 0; i < sample; ++i) {
    const size_t r = context.old_row_count +
                     rng.UniformInt(static_cast<uint64_t>(appended));
    for (size_t c = 0; c < table.num_cols(); ++c)
      row_values[c] = table.column(c).values[r];
    for (int rep = 0; rep < repeat; ++rep) Insert(*root_, row_values);
  }
  total_rows_ = table.num_rows();
}

size_t DeepDbEstimator::SizeBytes() const {
  size_t total = 0;
  std::function<void(const Node&)> visit = [&](const Node& node) {
    total += sizeof(Node);
    total += node.values.size() * sizeof(double) * 2;
    for (const auto& center : node.centers)
      total += center.size() * sizeof(double);
    for (const auto& child : node.children) visit(*child);
  };
  if (root_) visit(*root_);
  return total;
}

DeepDbEstimator::NodeCounts DeepDbEstimator::CountNodes() const {
  NodeCounts counts;
  std::function<void(const Node&)> visit = [&](const Node& node) {
    switch (node.type) {
      case Node::Type::kSum:
        ++counts.sum;
        break;
      case Node::Type::kProduct:
        ++counts.product;
        break;
      case Node::Type::kLeaf:
        ++counts.leaf;
        break;
    }
    for (const auto& child : node.children) visit(*child);
  };
  if (root_) visit(*root_);
  return counts;
}

}  // namespace arecel
