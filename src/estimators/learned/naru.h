#ifndef ARECEL_ESTIMATORS_LEARNED_NARU_H_
#define ARECEL_ESTIMATORS_LEARNED_NARU_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/estimator.h"
#include "estimators/learned/binning.h"
#include "ml/autoregressive.h"

namespace arecel {

// Naru (Yang et al., VLDB'20): a deep autoregressive model over the table's
// per-column dictionary codes, answering range queries with progressive
// sampling. Data-driven: trains on rows only.
//
// Two backbones are provided, matching §2.4 ("deep autoregressive models
// such as MADE and Transformer"): ResMADE (the paper's choice, default) and
// a decoder-only Transformer (ml/transformer.h); see bench_ablation_naru.
//
// Columns whose domain exceeds `max_vocab` are quantile-binned; the model
// then predicts bin probabilities and range predicates snap to bin
// boundaries (DESIGN.md §2 documents this substitution for the paper's
// embedding-based large-domain handling — both mechanisms trade resolution
// for size at large domains, which is what Figure 10 probes).
//
// Progressive sampling (§2.4) draws `sample_count` paths column by column,
// masking each conditional distribution to the values allowed by the
// query; the estimate is the mean product of the masked masses. The
// procedure is stochastic by design — Figure 11 and the stability rule of
// Table 6 probe exactly this — so each estimate draws fresh randomness
// from a mutable per-instance counter unless `pin_sampling_seed` is set.
class NaruEstimator : public CardinalityEstimator {
 public:
  enum class Backbone { kResMade, kTransformer };

  struct Options {
    Backbone backbone = Backbone::kResMade;
    size_t hidden_units = 64;  // ResMADE hidden width.
    int num_blocks = 2;        // residual / transformer blocks.
    size_t d_model = 32;       // Transformer embedding width.
    size_t ffn_hidden = 64;    // Transformer FFN width.
    int epochs = 20;
    int update_epochs = 1;  // the paper updates Naru with one epoch (§5.1).
    size_t batch_size = 512;
    float learning_rate = 7e-4f;
    int max_vocab = 256;
    int sample_count = 128;         // progressive-sampling paths.
    size_t max_train_rows = 20000;  // row subsample cap per epoch.
    bool pin_sampling_seed = false;
  };

  NaruEstimator() : NaruEstimator(Options()) {}
  explicit NaruEstimator(Options options) : options_(std::move(options)) {}

  std::string Name() const override { return "naru"; }
  void Train(const Table& table, const TrainContext& context) override;
  void Update(const Table& table, const UpdateContext& context) override;
  double EstimateSelectivity(const Query& query) const override;
  size_t SizeBytes() const override;
  // Progressive sampling advances estimate_counter_ per call.
  bool ThreadSafeEstimates() const override { return false; }
  // Packs the backbone's dense layers — the MADE logits layer slices are
  // the headline packed-kernel consumer (ml/packed.h).
  void PackForServing() override {
    if (model_ != nullptr) model_->PackForInference();
  }

  // Model persistence: column binnings + the autoregressive backbone
  // (either family, via AutoregressiveModel::Serialize) + the inference
  // knobs that shape estimates (sample_count, pin_sampling_seed). The
  // per-instance estimate counter restarts at zero, matching a fresh
  // instance — round-trip comparisons must be sequence-aligned.
  bool SerializeModel(ByteWriter* writer) const override;
  bool DeserializeModel(ByteReader* reader) override;

  double final_loss() const { return final_loss_; }
  const AutoregressiveModel* model() const { return model_.get(); }

 private:
  void RunEpochs(const Table& table, int epochs, uint64_t seed,
                 const CancellationToken* cancel = nullptr);

  Options options_;
  std::vector<ColumnBinning> binnings_;
  std::unique_ptr<AutoregressiveModel> model_;
  double final_loss_ = 0.0;
  mutable uint64_t estimate_counter_ = 0;
};

}  // namespace arecel

#endif  // ARECEL_ESTIMATORS_LEARNED_NARU_H_
