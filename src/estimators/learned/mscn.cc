#include "estimators/learned/mscn.h"

#include <algorithm>
#include <cmath>

#include "ml/loss.h"
#include "util/check.h"
#include "util/random.h"

namespace arecel {

namespace {
// Q-error in log space explodes exponentially; clip the exponent so a badly
// initialized model cannot produce inf gradients.
constexpr double kMaxLogDiff = 8.0;
}  // namespace

Matrix MscnEstimator::PredicateFeatures(const Query& query) const {
  // Feature layout per atom: [column one-hot | is_eq, is_ge, is_le | value].
  const size_t pred_dim = num_cols_ + 4;
  std::vector<std::vector<float>> atoms;
  for (const Predicate& p : query.predicates) {
    const size_t c = static_cast<size_t>(p.column);
    const double span = std::max(col_max_[c] - col_min_[c], 1e-12);
    auto normalize = [&](double v) {
      return static_cast<float>(std::clamp((v - col_min_[c]) / span, 0.0,
                                           1.0));
    };
    if (p.is_equality()) {
      std::vector<float> atom(pred_dim, 0.0f);
      atom[c] = 1.0f;
      atom[num_cols_] = 1.0f;
      atom[num_cols_ + 3] = normalize(p.lo);
      atoms.push_back(std::move(atom));
      continue;
    }
    if (!std::isinf(p.lo)) {
      std::vector<float> atom(pred_dim, 0.0f);
      atom[c] = 1.0f;
      atom[num_cols_ + 1] = 1.0f;  // >= lo.
      atom[num_cols_ + 3] = normalize(p.lo);
      atoms.push_back(std::move(atom));
    }
    if (!std::isinf(p.hi)) {
      std::vector<float> atom(pred_dim, 0.0f);
      atom[c] = 1.0f;
      atom[num_cols_ + 2] = 1.0f;  // <= hi.
      atom[num_cols_ + 3] = normalize(p.hi);
      atoms.push_back(std::move(atom));
    }
  }
  if (atoms.empty()) {
    // No finite atom (e.g. a fully unbounded probe): a single zero row keeps
    // the pooling well-defined.
    atoms.emplace_back(pred_dim, 0.0f);
  }
  Matrix features(atoms.size(), pred_dim);
  for (size_t i = 0; i < atoms.size(); ++i)
    std::copy(atoms[i].begin(), atoms[i].end(), features.Row(i));
  return features;
}

std::vector<float> MscnEstimator::SampleBitmap(const Query& query) const {
  std::vector<float> bitmap(options_.sample_size, 0.0f);
  if (!options_.use_sample_bitmap) return bitmap;
  const size_t rows = sample_.num_rows();
  for (size_t r = 0; r < rows && r < options_.sample_size; ++r) {
    bool match = true;
    for (const Predicate& p : query.predicates) {
      const double v = sample_.column(static_cast<size_t>(p.column)).values[r];
      if (v < p.lo || v > p.hi) {
        match = false;
        break;
      }
    }
    bitmap[r] = match ? 1.0f : 0.0f;
  }
  return bitmap;
}

float MscnEstimator::Forward(const Matrix& pred_features,
                             const std::vector<float>& bitmap, bool train) {
  const size_t h = options_.hidden_units;
  // Predicate module with average pooling.
  Matrix pred_embed;
  if (train) {
    pred_mlp_->ForwardTrain(pred_features, &pred_embed);
    cached_pred_embed_ = pred_embed;
    cached_pred_count_ = pred_features.rows();
  } else {
    pred_mlp_->Forward(pred_features, &pred_embed);
  }
  std::vector<float> pooled(h, 0.0f);
  for (size_t r = 0; r < pred_embed.rows(); ++r) {
    const float* row = pred_embed.Row(r);
    for (size_t j = 0; j < h; ++j) pooled[j] += row[j];
  }
  const float inv = 1.0f / static_cast<float>(pred_embed.rows());
  for (float& v : pooled) v *= inv;

  // Sample module.
  Matrix bitmap_in(1, bitmap.size());
  std::copy(bitmap.begin(), bitmap.end(), bitmap_in.Row(0));
  Matrix sample_embed;
  if (train) {
    sample_mlp_->ForwardTrain(bitmap_in, &sample_embed);
  } else {
    sample_mlp_->Forward(bitmap_in, &sample_embed);
  }

  // Output module over the concatenation.
  Matrix concat(1, 2 * h);
  std::copy(pooled.begin(), pooled.end(), concat.Row(0));
  std::copy(sample_embed.Row(0), sample_embed.Row(0) + h,
            concat.Row(0) + h);
  Matrix out;
  if (train) {
    out_mlp_->ForwardTrain(concat, &out);
  } else {
    out_mlp_->Forward(concat, &out);
  }
  return out.At(0, 0);
}

void MscnEstimator::FitWorkload(const Table& table, const Workload& workload,
                                int epochs, uint64_t seed, bool reuse_model) {
  const size_t h = options_.hidden_units;
  num_cols_ = table.num_cols();
  col_min_.resize(num_cols_);
  col_max_.resize(num_cols_);
  for (size_t c = 0; c < num_cols_; ++c) {
    col_min_[c] = table.column(c).min();
    col_max_[c] = table.column(c).max();
  }
  // Refresh the materialized sample over the (possibly updated) table.
  sample_ = table.SampleRows(std::min(options_.sample_size, table.num_rows()),
                             seed + 99);
  trained_rows_ = table.num_rows();

  if (!reuse_model || pred_mlp_ == nullptr) {
    Rng init(seed);
    pred_mlp_ = std::make_unique<Mlp>(
        std::vector<size_t>{num_cols_ + 4, h, h}, init);
    sample_mlp_ = std::make_unique<Mlp>(
        std::vector<size_t>{options_.sample_size, h, h}, init);
    out_mlp_ = std::make_unique<Mlp>(std::vector<size_t>{2 * h, h, 1}, init);
  }

  const size_t n = workload.size();
  std::vector<Matrix> pred_features(n);
  std::vector<std::vector<float>> bitmaps(n);
  std::vector<double> labels(n);
  for (size_t i = 0; i < n; ++i) {
    pred_features[i] = PredicateFeatures(workload.queries[i]);
    bitmaps[i] = SampleBitmap(workload.queries[i]);
    const double floor_sel = 0.5 / static_cast<double>(trained_rows_);
    labels[i] = std::log(std::max(workload.selectivities[i], floor_sel));
  }

  Rng rng(seed + 1);
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;

  for (int epoch = 0; epoch < epochs; ++epoch) {
    rng.Shuffle(order);
    double epoch_loss = 0.0;
    size_t steps = 0;
    for (size_t start = 0; start < n; start += options_.batch_size) {
      const size_t end = std::min(n, start + options_.batch_size);
      for (size_t i = start; i < end; ++i) {
        const size_t q = order[i];
        const float z = Forward(pred_features[q], bitmaps[q], /*train=*/true);
        // Mean q-error loss (ml/loss.h): L = exp(|z - t|), clipped.
        const LossValueGrad loss = QErrorLoss(z, labels[q], kMaxLogDiff);
        epoch_loss += loss.loss;
        const float dz = static_cast<float>(
            loss.dloss_dz / static_cast<double>(end - start));
        // Backward through the three modules.
        Matrix out_grad(1, 1);
        out_grad.At(0, 0) = dz;
        Matrix concat_grad;
        out_mlp_->Backward(out_grad, &concat_grad);
        const size_t hh = options_.hidden_units;
        // Split: first h to predicate pooling, last h to sample module.
        Matrix sample_grad(1, hh);
        std::copy(concat_grad.Row(0) + hh, concat_grad.Row(0) + 2 * hh,
                  sample_grad.Row(0));
        sample_mlp_->Backward(sample_grad);
        Matrix pred_grad(cached_pred_count_, hh);
        const float inv = 1.0f / static_cast<float>(cached_pred_count_);
        for (size_t r = 0; r < cached_pred_count_; ++r)
          for (size_t j = 0; j < hh; ++j)
            pred_grad.At(r, j) = concat_grad.At(0, j) * inv;
        pred_mlp_->Backward(pred_grad);
      }
      pred_mlp_->AdamStep(options_.learning_rate);
      sample_mlp_->AdamStep(options_.learning_rate);
      out_mlp_->AdamStep(options_.learning_rate);
      ++steps;
    }
    final_loss_ = epoch_loss / static_cast<double>(n);
    (void)steps;
  }
}

void MscnEstimator::Train(const Table& table, const TrainContext& context) {
  ARECEL_CHECK_MSG(context.training_workload != nullptr &&
                       context.training_workload->size() > 0,
                   "MSCN is query-driven and needs a labelled workload");
  FitWorkload(table, *context.training_workload, options_.epochs,
              context.seed, /*reuse_model=*/false);
}

void MscnEstimator::Update(const Table& table, const UpdateContext& context) {
  ARECEL_CHECK(context.update_workload != nullptr);
  const int epochs =
      context.epochs > 0 ? context.epochs : options_.update_epochs;
  FitWorkload(table, *context.update_workload, epochs, context.seed,
              /*reuse_model=*/true);
}

void MscnEstimator::PackForServing() {
  if (pred_mlp_ != nullptr) pred_mlp_->PackForInference();
  if (sample_mlp_ != nullptr) sample_mlp_->PackForInference();
  if (out_mlp_ != nullptr) out_mlp_->PackForInference();
}

double MscnEstimator::EstimateSelectivity(const Query& query) const {
  ARECEL_CHECK_MSG(out_mlp_ != nullptr, "Train() must run first");
  auto* self = const_cast<MscnEstimator*>(this);
  const float z = self->Forward(PredicateFeatures(query), SampleBitmap(query),
                                /*train=*/false);
  return std::clamp(std::exp(static_cast<double>(z)), 0.0, 1.0);
}

bool MscnEstimator::SerializeModel(ByteWriter* writer) const {
  if (out_mlp_ == nullptr) return false;
  writer->U64(num_cols_);
  writer->Doubles(col_min_);
  writer->Doubles(col_max_);
  writer->U64(options_.hidden_units);
  writer->U64(options_.sample_size);
  writer->U32(options_.use_sample_bitmap ? 1u : 0u);
  writer->U64(trained_rows_);
  writer->Str(sample_.name());
  writer->U64(sample_.num_cols());
  for (size_t c = 0; c < sample_.num_cols(); ++c) {
    const Column& column = sample_.column(c);
    writer->Str(column.name);
    writer->U32(column.categorical ? 1u : 0u);
    writer->Doubles(column.values);
  }
  SerializeMlp(*pred_mlp_, writer);
  SerializeMlp(*sample_mlp_, writer);
  SerializeMlp(*out_mlp_, writer);
  return true;
}

bool MscnEstimator::DeserializeModel(ByteReader* reader) {
  uint64_t cols = 0, hidden = 0, sample_size = 0, rows = 0;
  uint32_t use_bitmap = 0;
  std::vector<double> col_min, col_max;
  if (!reader->U64(&cols) || cols == 0 || cols > (1u << 16) ||
      !reader->Doubles(&col_min) || !reader->Doubles(&col_max) ||
      col_min.size() != cols || col_max.size() != cols ||
      !reader->U64(&hidden) || hidden == 0 || hidden > (1u << 20) ||
      !reader->U64(&sample_size) || sample_size == 0 ||
      sample_size > (1u << 24) || !reader->U32(&use_bitmap) ||
      !reader->U64(&rows)) {
    return false;
  }

  std::string sample_name;
  uint64_t sample_cols = 0;
  if (!reader->Str(&sample_name) || !reader->U64(&sample_cols) ||
      sample_cols != cols) {
    return false;
  }
  Table sample(sample_name);
  size_t sample_rows = 0;
  for (uint64_t c = 0; c < sample_cols; ++c) {
    std::string col_name;
    uint32_t categorical = 0;
    std::vector<double> values;
    if (!reader->Str(&col_name) || !reader->U32(&categorical) ||
        !reader->Doubles(&values)) {
      return false;
    }
    if (c == 0) {
      sample_rows = values.size();
    } else if (values.size() != sample_rows) {
      return false;  // ragged sample columns: corrupt stream.
    }
    sample.AddColumn(std::move(col_name), std::move(values),
                     categorical != 0);
  }
  sample.Finalize();

  std::unique_ptr<Mlp> pred_mlp, sample_mlp, out_mlp;
  if (!DeserializeMlp(reader, &pred_mlp) ||
      !DeserializeMlp(reader, &sample_mlp) ||
      !DeserializeMlp(reader, &out_mlp)) {
    return false;
  }
  // Topology must agree with the recorded feature shapes, or Forward would
  // read out of bounds.
  if (pred_mlp->layers().front().in_features() != cols + 4 ||
      pred_mlp->layers().back().out_features() != hidden ||
      sample_mlp->layers().front().in_features() != sample_size ||
      sample_mlp->layers().back().out_features() != hidden ||
      out_mlp->layers().front().in_features() != 2 * hidden ||
      out_mlp->layers().back().out_features() != 1) {
    return false;
  }

  num_cols_ = cols;
  col_min_ = std::move(col_min);
  col_max_ = std::move(col_max);
  options_.hidden_units = hidden;
  options_.sample_size = sample_size;
  options_.use_sample_bitmap = use_bitmap != 0;
  trained_rows_ = rows;
  sample_ = std::move(sample);
  pred_mlp_ = std::move(pred_mlp);
  sample_mlp_ = std::move(sample_mlp);
  out_mlp_ = std::move(out_mlp);
  final_loss_ = 0.0;
  return true;
}

size_t MscnEstimator::SizeBytes() const {
  size_t params = 0;
  if (pred_mlp_) {
    params = pred_mlp_->ParamCount() + sample_mlp_->ParamCount() +
             out_mlp_->ParamCount();
  }
  return params * sizeof(float) + sample_.DataSizeBytes();
}

}  // namespace arecel
