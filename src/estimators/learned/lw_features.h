#ifndef ARECEL_ESTIMATORS_LEARNED_LW_FEATURES_H_
#define ARECEL_ESTIMATORS_LEARNED_LW_FEATURES_H_

#include <vector>

#include "data/table.h"
#include "util/archive.h"
#include "ml/histogram.h"
#include "workload/query.h"

namespace arecel {

// Feature extraction for the lightweight models of Dutt et al. (LW-XGB /
// LW-NN, §2.3): range features plus CE features.
//
//  * Range features: per column, the predicate interval [lo, hi] normalized
//    to the column domain ([0, 1] when the column is unconstrained).
//  * CE features: three heuristic estimates cheaply derived from per-column
//    statistics, log-transformed:
//      AVI     — attribute value independence (product of per-column sels);
//      MinSel  — minimum per-column selectivity;
//      EBO     — exponential backoff combination (s1 * s2^1/2 * s3^1/4 *
//                s4^1/8 over the four most selective predicates).
//
// The paper computes these from Postgres's single-column statistics; this
// implementation uses the same ColumnStats objects as our Postgres stand-in.
class LwFeaturizer {
 public:
  // `include_ce_features` = false drops the three heuristic features
  // (ablation: range features only).
  void Build(const Table& table, bool include_ce_features = true);

  // Feature vector of dimension FeatureDim() = 2 * num_cols + 3.
  std::vector<float> Featurize(const Query& query) const;

  size_t FeatureDim() const {
    return 2 * stats_.size() + (include_ce_features_ ? 3 : 0);
  }

  // The three heuristic selectivities (not log-transformed).
  double Avi(const Query& query) const;
  double MinSel(const Query& query) const;
  double Ebo(const Query& query) const;

  // Log-selectivity label transform shared by both LW models: natural log
  // of the selectivity clamped to at least half a tuple.
  static double LogLabel(double selectivity, size_t rows);

  size_t SizeBytes() const;

  void Serialize(ByteWriter* writer) const;
  bool Deserialize(ByteReader* reader);

 private:
  std::vector<double> PerPredicateSelectivities(const Query& query) const;

  std::vector<ColumnStats> stats_;
  std::vector<double> col_min_;
  std::vector<double> col_max_;
  bool include_ce_features_ = true;
};

}  // namespace arecel

#endif  // ARECEL_ESTIMATORS_LEARNED_LW_FEATURES_H_
