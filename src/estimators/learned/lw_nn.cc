#include "estimators/learned/lw_nn.h"

#include <algorithm>
#include <cmath>

#include "ml/loss.h"
#include "robustness/failure.h"
#include "util/check.h"
#include "util/random.h"

namespace arecel {

void LwNnEstimator::FitWorkload(const Table& table, const Workload& workload,
                                int epochs, uint64_t seed, bool reuse_model,
                                const CancellationToken* cancel) {
  if (!reuse_model || model_ == nullptr) {
    featurizer_.Build(table, options_.include_ce_features);
    std::vector<size_t> sizes;
    sizes.push_back(featurizer_.FeatureDim());
    for (size_t h : options_.hidden) sizes.push_back(h);
    sizes.push_back(1);
    Rng init_rng(seed);
    model_ = std::make_unique<Mlp>(sizes, init_rng);
  }
  trained_rows_ = table.num_rows();

  const size_t n = workload.size();
  std::vector<std::vector<float>> features(n);
  std::vector<float> labels(n);
  for (size_t i = 0; i < n; ++i) {
    features[i] = featurizer_.Featurize(workload.queries[i]);
    labels[i] = static_cast<float>(
        LwFeaturizer::LogLabel(workload.selectivities[i], trained_rows_));
  }

  Rng rng(seed + 1);
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  const size_t batch = std::min(options_.batch_size, n);
  Matrix input(batch, featurizer_.FeatureDim());
  Matrix output, grad(batch, 1);

  for (int epoch = 0; epoch < epochs; ++epoch) {
    if (cancel && cancel->cancelled()) throw CancelledError("lw-nn train");
    rng.Shuffle(order);
    double epoch_loss = 0.0;
    size_t batches = 0;
    for (size_t start = 0; start + batch <= n; start += batch) {
      for (size_t b = 0; b < batch; ++b) {
        const auto& f = features[order[start + b]];
        std::copy(f.begin(), f.end(), input.Row(b));
      }
      model_->ForwardTrain(input, &output);
      // MSE on log labels (ml/loss.h): dL/dz = 2 (z - y) / batch.
      double loss = 0.0;
      for (size_t b = 0; b < batch; ++b) {
        const LossValueGrad value_grad =
            MseLogLoss(output.At(b, 0), labels[order[start + b]]);
        loss += value_grad.loss;
        grad.At(b, 0) =
            static_cast<float>(value_grad.dloss_dz) /
            static_cast<float>(batch);
      }
      epoch_loss += loss / static_cast<double>(batch);
      ++batches;
      model_->Backward(grad);
      model_->AdamStep(options_.learning_rate);
    }
    if (batches > 0) final_loss_ = epoch_loss / static_cast<double>(batches);
  }
}

void LwNnEstimator::Train(const Table& table, const TrainContext& context) {
  ARECEL_CHECK_MSG(context.training_workload != nullptr &&
                       context.training_workload->size() > 0,
                   "LW-NN is query-driven and needs a labelled workload");
  FitWorkload(table, *context.training_workload, options_.epochs,
              context.seed, /*reuse_model=*/false, context.cancellation);
}

void LwNnEstimator::Update(const Table& table, const UpdateContext& context) {
  ARECEL_CHECK(context.update_workload != nullptr);
  const int epochs =
      context.epochs > 0 ? context.epochs : options_.update_epochs;
  // Incremental: keep the learned weights, refresh statistics-derived
  // features only through relabelled queries (the featurizer itself is
  // rebuilt since CE features depend on column statistics).
  featurizer_.Build(table, options_.include_ce_features);
  FitWorkload(table, *context.update_workload, epochs, context.seed,
              /*reuse_model=*/true);
}

double LwNnEstimator::EstimateSelectivity(const Query& query) const {
  ARECEL_CHECK_MSG(model_ != nullptr, "Train() must run first");
  const std::vector<float> features = featurizer_.Featurize(query);
  Matrix input(1, features.size());
  std::copy(features.begin(), features.end(), input.Row(0));
  Matrix output;
  model_->Forward(input, &output);
  return std::clamp(std::exp(static_cast<double>(output.At(0, 0))), 0.0, 1.0);
}

size_t LwNnEstimator::SizeBytes() const {
  return (model_ ? model_->ParamCount() * sizeof(float) : 0) +
         featurizer_.SizeBytes();
}

bool LwNnEstimator::SerializeModel(ByteWriter* writer) const {
  if (model_ == nullptr) return false;
  featurizer_.Serialize(writer);
  writer->U64(trained_rows_);
  const std::vector<DenseLayer>& layers = model_->layers();
  writer->U64(layers.size());
  for (const DenseLayer& layer : layers) {
    writer->U64(layer.in_features());
    writer->U64(layer.out_features());
    const Matrix& weights = layer.weights();
    writer->Floats(std::vector<float>(weights.data(),
                                      weights.data() + weights.size()));
    writer->Floats(layer.bias());
  }
  return true;
}

bool LwNnEstimator::DeserializeModel(ByteReader* reader) {
  uint64_t rows = 0, layer_count = 0;
  if (!featurizer_.Deserialize(reader) || !reader->U64(&rows) ||
      !reader->U64(&layer_count) || layer_count == 0 || layer_count > 64) {
    return false;
  }
  std::vector<size_t> sizes;
  std::vector<std::vector<float>> weights(layer_count);
  std::vector<std::vector<float>> biases(layer_count);
  for (uint64_t i = 0; i < layer_count; ++i) {
    uint64_t in = 0, out = 0;
    if (!reader->U64(&in) || !reader->U64(&out) ||
        !reader->Floats(&weights[i]) || !reader->Floats(&biases[i])) {
      return false;
    }
    if (weights[i].size() != in * out || biases[i].size() != out)
      return false;
    if (i == 0) {
      if (in != featurizer_.FeatureDim()) return false;
      sizes.push_back(in);
    } else if (in != sizes.back()) {
      return false;
    }
    sizes.push_back(out);
  }
  if (sizes.back() != 1) return false;

  // Rebuild the MLP at the serialized topology (the initializer Rng is
  // irrelevant — every parameter is overwritten) and keep options_.hidden
  // consistent so SizeBytes/Update see the loaded shape.
  Rng init_rng(0);
  model_ = std::make_unique<Mlp>(sizes, init_rng);
  std::vector<DenseLayer>& layers = model_->layers();
  for (uint64_t i = 0; i < layer_count; ++i) {
    std::copy(weights[i].begin(), weights[i].end(),
              layers[i].mutable_weights().data());
    layers[i].mutable_bias() = biases[i];
  }
  options_.hidden.assign(sizes.begin() + 1, sizes.end() - 1);
  trained_rows_ = rows;
  return true;
}

}  // namespace arecel
