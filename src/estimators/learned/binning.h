#ifndef ARECEL_ESTIMATORS_LEARNED_BINNING_H_
#define ARECEL_ESTIMATORS_LEARNED_BINNING_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "data/table.h"

namespace arecel {

// Per-column quantile binning shared by the autoregressive estimators
// (Naru, DQM-D). Columns whose domain fits under the vocabulary cap keep
// one bin per distinct value; larger domains are packed greedily into bins
// of roughly equal row mass. Range predicates snap to the bins whose raw
// value extent intersects them.
struct ColumnBinning {
  // Per bin: the smallest and largest raw value it contains.
  std::vector<double> bin_min;
  std::vector<double> bin_max;

  int num_bins() const { return static_cast<int>(bin_min.size()); }

  // First/last bin intersecting [lo, hi]; first > last means empty.
  std::pair<int, int> Range(double lo, double hi) const;

  // Last bin whose min <= v, clamped into [0, num_bins).
  int BinForValue(double v) const;
};

// Builds binnings for every column of `table` under `max_vocab`.
std::vector<ColumnBinning> BuildColumnBinnings(const Table& table,
                                               int max_vocab);

// Encodes every row of `table` into model bins (row-major, rows * cols).
// Values outside a binning's trained extent land in the edge bins, which is
// how a stale model sees appended out-of-range data.
void EncodeRowsWithBinnings(const Table& table,
                            const std::vector<ColumnBinning>& binnings,
                            std::vector<int32_t>* codes);

}  // namespace arecel

#endif  // ARECEL_ESTIMATORS_LEARNED_BINNING_H_
