#ifndef ARECEL_ESTIMATORS_LEARNED_DQM_H_
#define ARECEL_ESTIMATORS_LEARNED_DQM_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/estimator.h"
#include "estimators/learned/binning.h"
#include "ml/autoregressive.h"

namespace arecel {

// DQM-D (Hasan et al., SIGMOD'20): the data-driven half of the Data&Query
// Model — like Naru, a deep autoregressive model of the joint distribution,
// but answering range queries with a VEGAS-style multi-stage adaptive
// importance sampler (§2.4: "an algorithm originally designed for
// Monte-Carlo multidimensional integration, which conducts multiple stages
// of sampling; at each stage it selects sample points in proportion to the
// contribution they make ... according to the result from the previous
// stage").
//
// The paper excludes DQM from its evaluation because "its data-driven model
// has a similar performance with Naru"; this implementation completes the
// Table 1 taxonomy. Caveat (bench_ablation_backbones): the product-form
// proposal below cannot condition later columns on sampled earlier ones,
// so unlike the authors' sampler it degrades on wide, strongly correlated
// tables; it matches Naru on low-dimensional ones.
//
// Sampler: per query, each constrained column keeps a proposal q_c over its
// allowed bins (initialized uniform). A stage draws `stage_samples` points
// x with independent per-column draws from q_c, weighs them
// w = P_model(x) / prod_c q_c(x_c), and refines q_c toward the
// per-bin sqrt of the accumulated squared weights (the VEGAS update).
// The final stage's mean weight is the selectivity estimate.
class DqmDEstimator : public CardinalityEstimator {
 public:
  struct Options {
    size_t hidden_units = 64;
    int num_blocks = 2;
    int epochs = 20;
    int update_epochs = 1;
    size_t batch_size = 512;
    float learning_rate = 7e-4f;
    int max_vocab = 256;
    size_t max_train_rows = 20000;
    int stages = 4;
    int stage_samples = 128;
    double vegas_damping = 0.5;   // blend between old and refined proposal.
    bool pin_sampling_seed = false;
  };

  DqmDEstimator() : DqmDEstimator(Options()) {}
  explicit DqmDEstimator(Options options) : options_(std::move(options)) {}

  std::string Name() const override { return "dqm-d"; }
  void Train(const Table& table, const TrainContext& context) override;
  void Update(const Table& table, const UpdateContext& context) override;
  double EstimateSelectivity(const Query& query) const override;
  size_t SizeBytes() const override;
  // VEGAS sampling advances estimate_counter_ per call.
  bool ThreadSafeEstimates() const override { return false; }

  double final_loss() const { return final_loss_; }

 private:
  void RunEpochs(const Table& table, int epochs, uint64_t seed);
  // Joint model probability of each sampled code row (batch x 1).
  void JointProbabilities(const std::vector<int32_t>& codes, size_t batch,
                          std::vector<double>* probabilities) const;

  Options options_;
  std::vector<ColumnBinning> binnings_;
  std::unique_ptr<AutoregressiveModel> model_;
  double final_loss_ = 0.0;
  mutable uint64_t estimate_counter_ = 0;
};

}  // namespace arecel

#endif  // ARECEL_ESTIMATORS_LEARNED_DQM_H_
