#ifndef ARECEL_ESTIMATORS_LEARNED_MSCN_H_
#define ARECEL_ESTIMATORS_LEARNED_MSCN_H_

#include <memory>
#include <string>
#include <vector>

#include "core/estimator.h"
#include "data/table.h"
#include "ml/matrix.h"
#include "ml/nn.h"

namespace arecel {

// MSCN (Kipf et al., CIDR'19), restricted to single-table queries exactly as
// the paper does (§3: only the predicate features and the qualifying-sample
// bitmap are kept).
//
// Architecture: a shared two-layer MLP embeds each predicate vector
// (column one-hot + op one-hot + normalized literal); embeddings are
// average-pooled over the predicate set. A materialized uniform sample of
// the table is evaluated against the query's conjunction, giving a bitmap
// that a second two-layer MLP embeds. Both representations are concatenated
// into a final two-layer output network producing the log-selectivity.
// Training minimizes the mean q-error (equivalently mean exp|z - t| in log
// space), MSCN's loss.
class MscnEstimator : public CardinalityEstimator {
 public:
  struct Options {
    size_t hidden_units = 48;
    size_t sample_size = 256;
    int epochs = 30;
    int update_epochs = 8;
    size_t batch_size = 64;  // queries per Adam step.
    float learning_rate = 1e-3f;
    // Ablation knob: when false, the bitmap input is zeroed, removing the
    // materialized sample's information while keeping the architecture.
    bool use_sample_bitmap = true;
  };

  MscnEstimator() : MscnEstimator(Options()) {}
  explicit MscnEstimator(Options options) : options_(std::move(options)) {}

  std::string Name() const override { return "mscn"; }
  bool IsQueryDriven() const override { return true; }
  void Train(const Table& table, const TrainContext& context) override;
  void Update(const Table& table, const UpdateContext& context) override;
  double EstimateSelectivity(const Query& query) const override;
  size_t SizeBytes() const override;
  // Packs all three module MLPs for inference (ml/packed.h).
  void PackForServing() override;

  double final_loss() const { return final_loss_; }

  // Model persistence: column ranges, the materialized sample (raw column
  // values; domains/codes are rebuilt by Table::Finalize), and the three
  // module MLPs. Adam moments are not saved; an Update() after a load
  // restarts them from zero.
  bool SerializeModel(ByteWriter* writer) const override;
  bool DeserializeModel(ByteReader* reader) override;

 private:
  // Per-predicate feature rows: (num predicates after decomposition) x
  // pred_dim. Interval predicates decompose into >= lo and <= hi atoms.
  Matrix PredicateFeatures(const Query& query) const;
  // 0/1 bitmap of sample rows satisfying the whole conjunction.
  std::vector<float> SampleBitmap(const Query& query) const;
  // Full forward; writes the pooled/pred caches needed for backward when
  // `train` is true.
  float Forward(const Matrix& pred_features, const std::vector<float>& bitmap,
                bool train);
  void FitWorkload(const Table& table, const Workload& workload, int epochs,
                   uint64_t seed, bool reuse_model);

  Options options_;
  size_t num_cols_ = 0;
  std::vector<double> col_min_, col_max_;
  Table sample_;
  std::unique_ptr<Mlp> pred_mlp_, sample_mlp_, out_mlp_;
  size_t trained_rows_ = 0;
  double final_loss_ = 0.0;

  // Caches from the last train-mode Forward (single query).
  Matrix cached_pred_embed_;   // (p x h) pre-pooling embeddings.
  size_t cached_pred_count_ = 0;
};

}  // namespace arecel

#endif  // ARECEL_ESTIMATORS_LEARNED_MSCN_H_
