#ifndef ARECEL_ESTIMATORS_LEARNED_LW_NN_H_
#define ARECEL_ESTIMATORS_LEARNED_LW_NN_H_

#include <memory>
#include <string>
#include <vector>

#include "core/estimator.h"
#include "estimators/learned/lw_features.h"
#include "ml/nn.h"

namespace arecel {

// LW-NN (Dutt et al., VLDB'19): a small fully-connected network over the
// same range + CE features as LW-XGB, trained with Adam on the MSE of the
// log-transformed selectivity. Query-driven.
class LwNnEstimator : public CardinalityEstimator {
 public:
  struct Options {
    std::vector<size_t> hidden = {64, 64};
    int epochs = 60;
    int update_epochs = 10;  // fewer passes for §5 dynamic updates.
    size_t batch_size = 128;
    float learning_rate = 1e-3f;
    bool include_ce_features = true;  // ablation knob.
  };

  LwNnEstimator() : LwNnEstimator(Options()) {}
  explicit LwNnEstimator(Options options) : options_(std::move(options)) {}

  std::string Name() const override { return "lw-nn"; }
  bool IsQueryDriven() const override { return true; }
  void Train(const Table& table, const TrainContext& context) override;
  void Update(const Table& table, const UpdateContext& context) override;
  double EstimateSelectivity(const Query& query) const override;
  size_t SizeBytes() const override;
  // Packs the regression MLP for inference (ml/packed.h).
  void PackForServing() override {
    if (model_ != nullptr) model_->PackForInference();
  }

  // Model persistence: featurizer statistics + dense-layer topology,
  // weights, and biases (Adam moments are training-only state and are not
  // saved; an Update() after a load restarts them from zero).
  bool SerializeModel(ByteWriter* writer) const override;
  bool DeserializeModel(ByteReader* reader) override;

  // Final training loss (mean squared error on log labels) — used by the
  // hyper-parameter tuning harness.
  double final_loss() const { return final_loss_; }

 private:
  void FitWorkload(const Table& table, const Workload& workload, int epochs,
                   uint64_t seed, bool reuse_model,
                   const CancellationToken* cancel = nullptr);

  Options options_;
  LwFeaturizer featurizer_;
  std::unique_ptr<Mlp> model_;
  size_t trained_rows_ = 0;
  double final_loss_ = 0.0;
};

}  // namespace arecel

#endif  // ARECEL_ESTIMATORS_LEARNED_LW_NN_H_
