#include "estimators/learned/lw_xgb.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace arecel {

void LwXgbEstimator::Train(const Table& table, const TrainContext& context) {
  ARECEL_CHECK_MSG(context.training_workload != nullptr &&
                       context.training_workload->size() > 0,
                   "LW-XGB is query-driven and needs a labelled workload");
  featurizer_.Build(table, options_.include_ce_features);
  trained_rows_ = table.num_rows();

  const Workload& workload = *context.training_workload;
  std::vector<std::vector<float>> features(workload.size());
  std::vector<double> labels(workload.size());
  for (size_t i = 0; i < workload.size(); ++i) {
    features[i] = featurizer_.Featurize(workload.queries[i]);
    labels[i] =
        LwFeaturizer::LogLabel(workload.selectivities[i], trained_rows_);
  }
  model_.Train(features, labels, options_.gbdt);
}

double LwXgbEstimator::EstimateSelectivity(const Query& query) const {
  const std::vector<float> features = featurizer_.Featurize(query);
  const double log_sel = model_.Predict(features);
  return std::clamp(std::exp(log_sel), 0.0, 1.0);
}

bool LwXgbEstimator::SerializeModel(ByteWriter* writer) const {
  featurizer_.Serialize(writer);
  model_.Serialize(writer);
  writer->U64(trained_rows_);
  return true;
}

bool LwXgbEstimator::DeserializeModel(ByteReader* reader) {
  uint64_t rows = 0;
  if (!featurizer_.Deserialize(reader) || !model_.Deserialize(reader) ||
      !reader->U64(&rows)) {
    return false;
  }
  trained_rows_ = rows;
  return true;
}

size_t LwXgbEstimator::SizeBytes() const {
  return model_.SizeBytes() + featurizer_.SizeBytes();
}

}  // namespace arecel
