#include "estimators/learned/lw_features.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace arecel {

namespace {
constexpr double kMinSelectivityFloor = 1e-12;
}  // namespace

void LwFeaturizer::Build(const Table& table, bool include_ce_features) {
  include_ce_features_ = include_ce_features;
  stats_.assign(table.num_cols(), ColumnStats());
  col_min_.resize(table.num_cols());
  col_max_.resize(table.num_cols());
  ColumnStats::Options options;
  options.num_buckets = 100;
  options.num_mcvs = 100;
  for (size_t c = 0; c < table.num_cols(); ++c) {
    stats_[c].Build(table.column(c).values, options);
    col_min_[c] = table.column(c).min();
    col_max_[c] = table.column(c).max();
  }
}

std::vector<double> LwFeaturizer::PerPredicateSelectivities(
    const Query& query) const {
  std::vector<double> sels;
  sels.reserve(query.predicates.size());
  for (const Predicate& p : query.predicates) {
    const ColumnStats& s = stats_[static_cast<size_t>(p.column)];
    const double sel = p.is_equality() ? s.EstimateEquality(p.lo)
                                       : s.EstimateRange(p.lo, p.hi);
    sels.push_back(std::clamp(sel, kMinSelectivityFloor, 1.0));
  }
  return sels;
}

double LwFeaturizer::Avi(const Query& query) const {
  double sel = 1.0;
  for (double s : PerPredicateSelectivities(query)) sel *= s;
  return sel;
}

double LwFeaturizer::MinSel(const Query& query) const {
  double min_sel = 1.0;
  for (double s : PerPredicateSelectivities(query))
    min_sel = std::min(min_sel, s);
  return min_sel;
}

double LwFeaturizer::Ebo(const Query& query) const {
  std::vector<double> sels = PerPredicateSelectivities(query);
  if (sels.empty()) return 1.0;
  std::sort(sels.begin(), sels.end());
  double sel = 1.0;
  double exponent = 1.0;
  for (size_t i = 0; i < sels.size() && i < 4; ++i) {
    sel *= std::pow(sels[i], exponent);
    exponent /= 2.0;
  }
  return sel;
}

std::vector<float> LwFeaturizer::Featurize(const Query& query) const {
  ARECEL_CHECK(!stats_.empty());
  const size_t n = stats_.size();
  std::vector<float> features(FeatureDim());
  // Default: unconstrained columns cover [0, 1].
  for (size_t c = 0; c < n; ++c) {
    features[2 * c] = 0.0f;
    features[2 * c + 1] = 1.0f;
  }
  for (const Predicate& p : query.predicates) {
    const size_t c = static_cast<size_t>(p.column);
    const double width = col_max_[c] - col_min_[c];
    const double span = width > 0 ? width : 1.0;
    const double lo = std::isinf(p.lo)
                          ? 0.0
                          : std::clamp((p.lo - col_min_[c]) / span, 0.0, 1.0);
    const double hi = std::isinf(p.hi)
                          ? 1.0
                          : std::clamp((p.hi - col_min_[c]) / span, 0.0, 1.0);
    features[2 * c] = static_cast<float>(lo);
    features[2 * c + 1] = static_cast<float>(hi);
  }
  if (include_ce_features_) {
    features[2 * n] = static_cast<float>(std::log(std::max(
        Avi(query), kMinSelectivityFloor)));
    features[2 * n + 1] = static_cast<float>(std::log(std::max(
        MinSel(query), kMinSelectivityFloor)));
    features[2 * n + 2] = static_cast<float>(std::log(std::max(
        Ebo(query), kMinSelectivityFloor)));
  }
  return features;
}

double LwFeaturizer::LogLabel(double selectivity, size_t rows) {
  const double floor_sel = 0.5 / static_cast<double>(std::max<size_t>(rows, 1));
  return std::log(std::max(selectivity, floor_sel));
}

void LwFeaturizer::Serialize(ByteWriter* writer) const {
  writer->U64(stats_.size());
  for (const ColumnStats& s : stats_) s.Serialize(writer);
  writer->Doubles(col_min_);
  writer->Doubles(col_max_);
  writer->U32(include_ce_features_ ? 1 : 0);
}

bool LwFeaturizer::Deserialize(ByteReader* reader) {
  uint64_t count = 0;
  if (!reader->U64(&count) || count > 4096) return false;
  stats_.assign(count, ColumnStats());
  for (ColumnStats& s : stats_) {
    if (!s.Deserialize(reader)) return false;
  }
  uint32_t include = 0;
  if (!reader->Doubles(&col_min_) || !reader->Doubles(&col_max_) ||
      !reader->U32(&include)) {
    return false;
  }
  if (col_min_.size() != stats_.size() || col_max_.size() != stats_.size())
    return false;
  include_ce_features_ = include != 0;
  return true;
}

size_t LwFeaturizer::SizeBytes() const {
  size_t total = 0;
  for (const ColumnStats& s : stats_) total += s.SizeBytes();
  return total;
}

}  // namespace arecel
