#include "estimators/learned/binning.h"

#include <algorithm>

#include "util/check.h"

namespace arecel {

std::pair<int, int> ColumnBinning::Range(double lo, double hi) const {
  const auto first_it = std::lower_bound(bin_max.begin(), bin_max.end(), lo);
  const int first = static_cast<int>(first_it - bin_max.begin());
  const auto last_it = std::upper_bound(bin_min.begin(), bin_min.end(), hi);
  const int last = static_cast<int>(last_it - bin_min.begin()) - 1;
  return {first, last};
}

int ColumnBinning::BinForValue(double v) const {
  const auto it = std::upper_bound(bin_min.begin(), bin_min.end(), v);
  const int bin = static_cast<int>(it - bin_min.begin()) - 1;
  return std::clamp(bin, 0, num_bins() - 1);
}

std::vector<ColumnBinning> BuildColumnBinnings(const Table& table,
                                               int max_vocab) {
  ARECEL_CHECK(max_vocab >= 1);
  std::vector<ColumnBinning> binnings(table.num_cols());
  for (size_t c = 0; c < table.num_cols(); ++c) {
    const Column& col = table.column(c);
    ColumnBinning& binning = binnings[c];
    const int domain = static_cast<int>(col.domain.size());
    if (domain <= max_vocab) {
      binning.bin_min = col.domain;
      binning.bin_max = col.domain;
      continue;
    }
    // Pack sorted distinct values greedily so each bin holds roughly
    // rows / max_vocab rows.
    std::vector<size_t> value_counts(static_cast<size_t>(domain), 0);
    for (int32_t code : col.codes) ++value_counts[static_cast<size_t>(code)];
    const double target = static_cast<double>(col.values.size()) /
                          static_cast<double>(max_vocab);
    size_t bin_rows = 0;
    binning.bin_min.push_back(col.domain[0]);
    for (int v = 0; v < domain; ++v) {
      bin_rows += value_counts[static_cast<size_t>(v)];
      const bool last_value = v + 1 == domain;
      if ((static_cast<double>(bin_rows) >= target && !last_value &&
           static_cast<int>(binning.bin_min.size()) < max_vocab) ||
          last_value) {
        binning.bin_max.push_back(col.domain[static_cast<size_t>(v)]);
        if (!last_value)
          binning.bin_min.push_back(col.domain[static_cast<size_t>(v) + 1]);
        bin_rows = 0;
      }
    }
    ARECEL_CHECK(binning.bin_min.size() == binning.bin_max.size());
  }
  return binnings;
}

void EncodeRowsWithBinnings(const Table& table,
                            const std::vector<ColumnBinning>& binnings,
                            std::vector<int32_t>* codes) {
  const size_t n = table.num_cols();
  const size_t rows = table.num_rows();
  ARECEL_CHECK(binnings.size() == n);
  codes->resize(rows * n);
  for (size_t c = 0; c < n; ++c) {
    const Column& col = table.column(c);
    const ColumnBinning& binning = binnings[c];
    std::vector<int32_t> code_to_bin(col.domain.size());
    for (size_t d = 0; d < col.domain.size(); ++d)
      code_to_bin[d] = binning.BinForValue(col.domain[d]);
    for (size_t r = 0; r < rows; ++r)
      (*codes)[r * n + c] = code_to_bin[static_cast<size_t>(col.codes[r])];
  }
}

}  // namespace arecel
