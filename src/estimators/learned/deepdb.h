#ifndef ARECEL_ESTIMATORS_LEARNED_DEEPDB_H_
#define ARECEL_ESTIMATORS_LEARNED_DEEPDB_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/estimator.h"

namespace arecel {

// DeepDB (Hilprecht et al., VLDB'20): a sum-product network learned from
// data (§2.4). Structure learning recursively
//  * splits columns into independent groups when every cross-group pairwise
//    RDC falls below `rdc_threshold` (product node);
//  * otherwise clusters rows with k-means (sum node, weights = cluster
//    fractions);
//  * stops at single columns or at `min_instance_fraction` of the table
//    (leaf = exact value-frequency histogram; below the minimum instance
//    slice, columns are assumed independent).
//
// Because leaves are plain histograms and internal nodes only add and
// multiply, DeepDB natively satisfies all five logical rules of Table 6.
//
// Updates insert a sample of the appended rows directly into the tree
// (route by nearest cluster center at sum nodes), the incremental update
// procedure from the DeepDB paper that §5 relies on.
class DeepDbEstimator : public CardinalityEstimator {
 public:
  struct Options {
    double rdc_threshold = 0.3;
    double min_instance_fraction = 0.01;
    int kmeans_k = 2;
    size_t rdc_sample_rows = 2000;   // rows used per RDC evaluation.
    size_t kmeans_sample_rows = 5000;
    double update_sample_fraction = 0.01;  // of appended rows (paper: 1%).
    int max_depth = 24;
  };

  // Constructors and destructor are out-of-line: Node is incomplete here
  // and the unique_ptr<Node> member needs a complete type at those points.
  DeepDbEstimator();
  explicit DeepDbEstimator(Options options);
  ~DeepDbEstimator() override;

  std::string Name() const override { return "deepdb"; }
  void Train(const Table& table, const TrainContext& context) override;
  void Update(const Table& table, const UpdateContext& context) override;
  double EstimateSelectivity(const Query& query) const override;
  size_t SizeBytes() const override;

  // Introspection for tests: counts of node kinds.
  struct NodeCounts {
    size_t sum = 0, product = 0, leaf = 0;
  };
  NodeCounts CountNodes() const;

  // SPN node; defined in the .cc. Public so file-local helpers there can
  // take it by reference.
  struct Node;

 private:

  std::unique_ptr<Node> Build(const Table& table,
                              const std::vector<uint32_t>& rows,
                              const std::vector<int>& cols, int depth,
                              uint64_t seed);
  std::unique_ptr<Node> BuildLeaf(const Table& table,
                                  const std::vector<uint32_t>& rows, int col);
  std::unique_ptr<Node> BuildIndependentProduct(
      const Table& table, const std::vector<uint32_t>& rows,
      const std::vector<int>& cols);
  double Probability(const Node& node, const Query& query) const;
  void Insert(Node& node, const std::vector<double>& row_values);

  Options options_;
  size_t min_instance_rows_ = 0;
  std::unique_ptr<Node> root_;
  size_t total_rows_ = 0;
  std::vector<double> col_min_, col_max_;  // for k-means normalization.
};

}  // namespace arecel

#endif  // ARECEL_ESTIMATORS_LEARNED_DEEPDB_H_
