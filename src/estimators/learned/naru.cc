#include "estimators/learned/naru.h"

#include <algorithm>
#include <cmath>

#include "robustness/failure.h"
#include "util/check.h"
#include "util/random.h"

namespace arecel {

void NaruEstimator::RunEpochs(const Table& table, int epochs, uint64_t seed,
                              const CancellationToken* cancel) {
  const size_t n = table.num_cols();
  std::vector<int32_t> all_codes;
  EncodeRowsWithBinnings(table, binnings_, &all_codes);
  const size_t rows = table.num_rows();

  Rng rng(seed);
  const size_t train_rows = std::min(rows, options_.max_train_rows);
  std::vector<size_t> order(rows);
  for (size_t i = 0; i < rows; ++i) order[i] = i;

  const size_t batch = std::min(options_.batch_size, train_rows);
  std::vector<int32_t> batch_codes(batch * n);

  for (int epoch = 0; epoch < epochs; ++epoch) {
    if (cancel && cancel->cancelled()) throw CancelledError("naru train");
    rng.Shuffle(order);
    double epoch_nll = 0.0;
    size_t steps = 0;
    for (size_t start = 0; start + batch <= train_rows; start += batch) {
      for (size_t b = 0; b < batch; ++b) {
        const size_t row = order[start + b];
        std::copy(&all_codes[row * n], &all_codes[row * n] + n,
                  &batch_codes[b * n]);
      }
      epoch_nll +=
          model_->TrainStep(batch_codes, batch, options_.learning_rate);
      ++steps;
    }
    if (steps > 0) final_loss_ = epoch_nll / static_cast<double>(steps);
  }
}

void NaruEstimator::Train(const Table& table, const TrainContext& context) {
  binnings_ = BuildColumnBinnings(table, options_.max_vocab);
  std::vector<int> vocabs;
  vocabs.reserve(table.num_cols());
  for (const auto& binning : binnings_) vocabs.push_back(binning.num_bins());
  if (options_.backbone == Backbone::kTransformer) {
    TransformerBackboneOptions model_options;
    model_options.d_model = options_.d_model;
    model_options.ffn_hidden = options_.ffn_hidden;
    model_options.num_blocks = options_.num_blocks;
    model_options.seed = context.seed;
    model_ = MakeTransformerModel(std::move(vocabs), model_options);
  } else {
    ResMadeBackboneOptions model_options;
    model_options.hidden_units = options_.hidden_units;
    model_options.num_blocks = options_.num_blocks;
    model_options.seed = context.seed;
    model_ = MakeResMadeModel(std::move(vocabs), model_options);
  }
  RunEpochs(table, options_.epochs, context.seed + 1, context.cancellation);
}

void NaruEstimator::Update(const Table& table, const UpdateContext& context) {
  ARECEL_CHECK_MSG(model_ != nullptr, "Train() must run before Update()");
  // Keep the model and its vocabulary; run the configured number of extra
  // epochs over the updated table (the paper's Naru update procedure).
  const int epochs =
      context.epochs > 0 ? context.epochs : options_.update_epochs;
  RunEpochs(table, epochs, context.seed);
}

double NaruEstimator::EstimateSelectivity(const Query& query) const {
  ARECEL_CHECK_MSG(model_ != nullptr, "Train() must run first");
  const size_t n = binnings_.size();

  // Per-column allowed bin ranges.
  std::vector<std::pair<int, int>> ranges(n);
  for (size_t c = 0; c < n; ++c)
    ranges[c] = {0, binnings_[c].num_bins() - 1};
  for (const Predicate& p : query.predicates) {
    const size_t c = static_cast<size_t>(p.column);
    const auto [first, last] = binnings_[c].Range(p.lo, p.hi);
    ranges[c].first = std::max(ranges[c].first, first);
    ranges[c].second = std::min(ranges[c].second, last);
    if (ranges[c].first > ranges[c].second) return 0.0;
  }

  // Progressive sampling. Each estimate draws fresh randomness (stochastic
  // inference is intrinsic to Naru and probed by Figure 11 / Table 6).
  const uint64_t draw =
      options_.pin_sampling_seed ? 0xabcdef12u : estimate_counter_++;
  Rng rng(0x9e3779b97f4a7c15ULL ^ (draw * 0xd1342543de82ef95ULL));

  const size_t samples = static_cast<size_t>(options_.sample_count);
  std::vector<int32_t> codes(samples * n, 0);
  std::vector<double> weights(samples, 1.0);
  Matrix logits;
  std::vector<double> probs;

  for (size_t c = 0; c < n; ++c) {
    model_->ColumnLogits(codes, samples, c, &logits);
    const auto [lo_bin, hi_bin] = ranges[c];
    const size_t vocab = static_cast<size_t>(binnings_[c].num_bins());
    for (size_t s = 0; s < samples; ++s) {
      if (weights[s] == 0.0) continue;
      // Softmax over the sliced logits row (ForwardColumnLogits returns the
      // segment at offset 0).
      {
        const float* row = logits.Row(s);
        probs.resize(vocab);
        float max_v = row[0];
        for (size_t v = 1; v < vocab; ++v) max_v = std::max(max_v, row[v]);
        double sum = 0.0;
        for (size_t v = 0; v < vocab; ++v) {
          probs[v] = std::exp(static_cast<double>(row[v] - max_v));
          sum += probs[v];
        }
        for (size_t v = 0; v < vocab; ++v) probs[v] /= sum;
      }
      double mass = 0.0;
      for (int v = lo_bin; v <= hi_bin; ++v)
        mass += probs[static_cast<size_t>(v)];
      if (mass <= 0.0) {
        weights[s] = 0.0;
        continue;
      }
      weights[s] *= mass;
      // Sample the next code proportionally within the allowed range.
      double target = rng.Uniform() * mass;
      int chosen = hi_bin;
      for (int v = lo_bin; v <= hi_bin; ++v) {
        target -= probs[static_cast<size_t>(v)];
        if (target <= 0.0) {
          chosen = v;
          break;
        }
      }
      codes[s * n + c] = chosen;
    }
  }

  double total = 0.0;
  for (double w : weights) total += w;
  return std::clamp(total / static_cast<double>(samples), 0.0, 1.0);
}

bool NaruEstimator::SerializeModel(ByteWriter* writer) const {
  if (model_ == nullptr) return false;
  writer->U64(binnings_.size());
  for (const ColumnBinning& binning : binnings_) {
    writer->Doubles(binning.bin_min);
    writer->Doubles(binning.bin_max);
  }
  writer->U32(static_cast<uint32_t>(options_.sample_count));
  writer->U32(options_.pin_sampling_seed ? 1u : 0u);
  model_->Serialize(writer);
  return true;
}

bool NaruEstimator::DeserializeModel(ByteReader* reader) {
  uint64_t cols = 0;
  if (!reader->U64(&cols) || cols == 0 || cols > (1u << 16)) return false;
  std::vector<ColumnBinning> binnings(cols);
  for (ColumnBinning& binning : binnings) {
    if (!reader->Doubles(&binning.bin_min) ||
        !reader->Doubles(&binning.bin_max) || binning.bin_min.empty() ||
        binning.bin_min.size() != binning.bin_max.size()) {
      return false;
    }
  }
  uint32_t sample_count = 0, pin_seed = 0;
  if (!reader->U32(&sample_count) || !reader->U32(&pin_seed) ||
      sample_count == 0 || sample_count > (1u << 20)) {
    return false;
  }
  std::unique_ptr<AutoregressiveModel> model =
      DeserializeAutoregressiveModel(reader);
  if (model == nullptr || model->num_columns() != cols) return false;
  for (size_t c = 0; c < cols; ++c) {
    if (model->vocab_size(c) != binnings[c].num_bins()) return false;
  }
  binnings_ = std::move(binnings);
  model_ = std::move(model);
  options_.sample_count = static_cast<int>(sample_count);
  options_.pin_sampling_seed = pin_seed != 0;
  estimate_counter_ = 0;
  final_loss_ = 0.0;
  return true;
}

size_t NaruEstimator::SizeBytes() const {
  size_t binning_bytes = 0;
  for (const auto& binning : binnings_)
    binning_bytes += 2 * binning.bin_min.size() * sizeof(double);
  return (model_ ? model_->ParamCount() * sizeof(float) : 0) + binning_bytes;
}

}  // namespace arecel
