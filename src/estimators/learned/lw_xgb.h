#ifndef ARECEL_ESTIMATORS_LEARNED_LW_XGB_H_
#define ARECEL_ESTIMATORS_LEARNED_LW_XGB_H_

#include <string>

#include "core/estimator.h"
#include "estimators/learned/lw_features.h"
#include "ml/gbdt.h"

namespace arecel {

// LW-XGB (Dutt et al., VLDB'19): gradient-boosted trees over range + CE
// features, minimizing the MSE of the log-transformed selectivity (which
// equals minimizing the geometric mean of q-error with more weight on
// large errors). Query-driven: requires a labelled training workload.
class LwXgbEstimator : public CardinalityEstimator {
 public:
  struct Options {
    GbdtOptions gbdt;  // the paper sweeps num_trees in {16, 32, 64, ...}.
    bool include_ce_features = true;  // ablation knob.
  };

  LwXgbEstimator() : LwXgbEstimator(Options()) {}
  explicit LwXgbEstimator(Options options) : options_(std::move(options)) {}

  std::string Name() const override { return "lw-xgb"; }
  bool IsQueryDriven() const override { return true; }
  void Train(const Table& table, const TrainContext& context) override;
  double EstimateSelectivity(const Query& query) const override;
  size_t SizeBytes() const override;
  bool SerializeModel(ByteWriter* writer) const override;
  bool DeserializeModel(ByteReader* reader) override;

 private:
  Options options_;
  LwFeaturizer featurizer_;
  Gbdt model_;
  size_t trained_rows_ = 0;
};

}  // namespace arecel

#endif  // ARECEL_ESTIMATORS_LEARNED_LW_XGB_H_
