#include "estimators/traditional/dbms.h"

#include <algorithm>
#include <cmath>

namespace arecel {

void PerColumnStatsEstimator::Train(const Table& table,
                                    const TrainContext& /*context*/) {
  stats_.assign(table.num_cols(), ColumnStats());
  for (size_t c = 0; c < table.num_cols(); ++c) {
    stats_[c].Build(table.column(c).values, options_);
  }
}

double PerColumnStatsEstimator::EstimateSelectivity(
    const Query& query) const {
  std::vector<double> sels;
  sels.reserve(query.predicates.size());
  for (const Predicate& p : query.predicates) {
    const ColumnStats& s = stats_[static_cast<size_t>(p.column)];
    const double sel = p.is_equality() ? s.EstimateEquality(p.lo)
                                       : s.EstimateRange(p.lo, p.hi);
    sels.push_back(std::clamp(sel, 0.0, 1.0));
  }
  if (sels.empty()) return 1.0;

  if (combination_ == Combination::kIndependence) {
    double sel = 1.0;
    for (double s : sels) sel *= s;
    return sel;
  }
  // Exponential backoff: multiply the four most selective predicates with
  // exponentially decaying weights; further predicates are assumed to be
  // redundant with the first four.
  std::sort(sels.begin(), sels.end());
  double sel = 1.0;
  double exponent = 1.0;
  for (size_t i = 0; i < sels.size() && i < 4; ++i) {
    sel *= std::pow(sels[i], exponent);
    exponent /= 2.0;
  }
  return sel;
}

bool PerColumnStatsEstimator::SerializeModel(ByteWriter* writer) const {
  writer->U64(stats_.size());
  for (const ColumnStats& s : stats_) s.Serialize(writer);
  return true;
}

bool PerColumnStatsEstimator::DeserializeModel(ByteReader* reader) {
  uint64_t count = 0;
  if (!reader->U64(&count) || count > 4096) return false;
  stats_.assign(count, ColumnStats());
  for (ColumnStats& s : stats_) {
    if (!s.Deserialize(reader)) return false;
  }
  return true;
}

size_t PerColumnStatsEstimator::SizeBytes() const {
  size_t total = 0;
  for (const ColumnStats& s : stats_) total += s.SizeBytes();
  return total;
}

std::unique_ptr<CardinalityEstimator> MakePostgresEstimator() {
  ColumnStats::Options options;
  options.num_buckets = 1000;  // statistics target 10000 scaled to our data.
  options.num_mcvs = 1000;
  return std::make_unique<PerColumnStatsEstimator>(
      "postgres", options, PerColumnStatsEstimator::Combination::kIndependence);
}

std::unique_ptr<CardinalityEstimator> MakeMysqlEstimator() {
  ColumnStats::Options options;
  options.num_buckets = 100;  // MySQL's singleton+equi-height histograms
  options.num_mcvs = 24;      // resolve far less than Postgres' target.
  return std::make_unique<PerColumnStatsEstimator>(
      "mysql", options, PerColumnStatsEstimator::Combination::kIndependence);
}

std::unique_ptr<CardinalityEstimator> MakeDbmsAEstimator() {
  ColumnStats::Options options;
  options.num_buckets = 200;
  options.num_mcvs = 200;
  return std::make_unique<PerColumnStatsEstimator>(
      "dbms-a", options,
      PerColumnStatsEstimator::Combination::kExponentialBackoff);
}

}  // namespace arecel
