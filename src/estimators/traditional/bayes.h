#ifndef ARECEL_ESTIMATORS_TRADITIONAL_BAYES_H_
#define ARECEL_ESTIMATORS_TRADITIONAL_BAYES_H_

#include <string>
#include <vector>

#include "core/estimator.h"

namespace arecel {

// Bayesian-network estimator in the Chow-Liu tree family (§4.1 "Bayes"):
// learns the maximum-mutual-information spanning tree over the columns,
// stores smoothed conditional probability tables over binned column
// domains, and answers range queries with exact sum-product message
// passing on the tree. (The paper's reference implementation estimates
// ranges with progressive sampling; exact tree inference computes the same
// quantity without sampling noise and is feasible because the tree has
// treewidth 1 — the deterministic inference also means Bayes never violates
// the Table 6 stability rule, matching its classical reputation.)
class BayesEstimator : public CardinalityEstimator {
 public:
  // Inference mode: exact message passing (default; deterministic) or the
  // paper's progressive sampling (stochastic — ancestor-sample the tree
  // root-down, masking each conditional by the query's coverage weights;
  // the estimate is the mean product of masked masses). The sampled mode
  // exists to mirror the reference implementation and to show the
  // stability cost of sampling (see bench_ablation_bayes).
  enum class Inference { kExactMessagePassing, kProgressiveSampling };

  struct Options {
    int max_bins = 64;        // per-column bin budget for the CPTs.
    double laplace = 0.1;     // CPT smoothing pseudo-count.
    size_t max_build_rows = 200000;
    Inference inference = Inference::kExactMessagePassing;
    int sample_count = 200;   // progressive-sampling paths.
  };

  BayesEstimator() : BayesEstimator(Options()) {}
  explicit BayesEstimator(Options options) : options_(options) {}

  std::string Name() const override { return "bayes"; }
  void Train(const Table& table, const TrainContext& context) override;
  double EstimateSelectivity(const Query& query) const override;
  size_t SizeBytes() const override;
  // Progressive-sampling mode advances estimate_counter_ per call.
  bool ThreadSafeEstimates() const override { return false; }

  // Tree structure for tests: parent[i] is i's parent column (-1 for root).
  const std::vector<int>& parents() const { return parent_; }

 private:
  double EstimateExact(
      const std::vector<std::vector<double>>& coverage) const;
  double EstimateSampled(
      const std::vector<std::vector<double>>& coverage) const;

  struct ColumnBins {
    // bin_min/bin_max: raw-value extent of each bin; bin_values: number of
    // distinct values per bin (for partial-coverage weighting).
    std::vector<double> bin_min, bin_max;
    std::vector<int> bin_values;
    int num_bins() const { return static_cast<int>(bin_min.size()); }
  };

  // Per-bin query coverage weights in [0, 1] for `col` under [lo, hi].
  std::vector<double> CoverageWeights(size_t col, double lo, double hi) const;

  Options options_;
  std::vector<ColumnBins> bins_;
  std::vector<int> parent_;          // Chow-Liu tree; -1 = root.
  std::vector<std::vector<int>> children_;
  int root_ = 0;
  std::vector<double> root_marginal_;              // P(root bin).
  // cpt_[c][a * bins_c + b] = P(col c = bin b | parent(c) = bin a).
  std::vector<std::vector<double>> cpt_;
  // Fresh randomness per estimate in progressive-sampling mode.
  mutable uint64_t estimate_counter_ = 0;
};

}  // namespace arecel

#endif  // ARECEL_ESTIMATORS_TRADITIONAL_BAYES_H_
