#ifndef ARECEL_ESTIMATORS_TRADITIONAL_KDE_H_
#define ARECEL_ESTIMATORS_TRADITIONAL_KDE_H_

#include <string>
#include <vector>

#include "core/estimator.h"
#include "data/table.h"

namespace arecel {

// KDE-FB (Heimel et al., SIGMOD'15): Gaussian kernel density estimation
// over a uniform row sample, with per-dimension bandwidths tuned by query
// feedback. A range query's selectivity under a product-Gaussian kernel is
//   (1/S) * sum_s prod_d [ Phi((hi_d - x_sd)/h_d) - Phi((lo_d - x_sd)/h_d) ]
// which is differentiable in h_d, so the feedback step runs gradient
// descent on log-bandwidths against the squared selectivity error of a
// labelled workload (the "FB" part).
class KdeFbEstimator : public CardinalityEstimator {
 public:
  struct Options {
    size_t max_sample_rows = 4000;
    int feedback_iterations = 30;
    size_t feedback_queries = 400;
    double feedback_learning_rate = 0.25;
  };

  KdeFbEstimator() : KdeFbEstimator(Options()) {}
  explicit KdeFbEstimator(Options options) : options_(options) {}

  std::string Name() const override { return "kde-fb"; }
  bool IsQueryDriven() const override { return true; }
  void Train(const Table& table, const TrainContext& context) override;
  double EstimateSelectivity(const Query& query) const override;
  size_t SizeBytes() const override;

  const std::vector<double>& bandwidths() const { return bandwidths_; }

 private:
  // Per-sample per-dim kernel mass for a query; returns the estimate and,
  // when `bandwidth_grad` is non-null, d(estimate)/d(log h_d).
  double Evaluate(const Query& query, std::vector<double>* bandwidth_grad)
      const;

  Options options_;
  Table sample_;
  std::vector<double> bandwidths_;  // per dimension.
  size_t num_cols_ = 0;
  // Per-column sorted domain, for snapping predicate bounds to cell edges
  // (continuity correction: an equality on a discrete value integrates the
  // kernel over that value's cell instead of a zero-width interval).
  std::vector<std::vector<double>> domains_;
};

}  // namespace arecel

#endif  // ARECEL_ESTIMATORS_TRADITIONAL_KDE_H_
