#ifndef ARECEL_ESTIMATORS_TRADITIONAL_QUICKSEL_H_
#define ARECEL_ESTIMATORS_TRADITIONAL_QUICKSEL_H_

#include <string>
#include <vector>

#include "core/estimator.h"

namespace arecel {

// QuickSel (Park et al., SIGMOD'20): models the data distribution as a
// uniform mixture whose components are the hyper-rectangles of observed
// training queries, with component weights fitted to the queries' observed
// selectivities (query feedback). Query-driven.
//
// Implementation notes: queries are mapped to boxes in per-column *code
// space* (equality on a categorical value becomes the unit cell of that
// dictionary code), which keeps every box full-dimensional. Weights solve
//   min ||A w - s||^2  s.t.  w >= 0, sum w = 1
// by projected gradient descent with simplex projection, where
// A[i][j] = vol(box_i ∩ box_j) / vol(box_j).
class QuickSelEstimator : public CardinalityEstimator {
 public:
  struct Options {
    size_t max_mixture_components = 256;
    int solver_iterations = 400;
    double solver_learning_rate = 0.05;
  };

  QuickSelEstimator() : QuickSelEstimator(Options()) {}
  explicit QuickSelEstimator(Options options) : options_(options) {}

  std::string Name() const override { return "quicksel"; }
  bool IsQueryDriven() const override { return true; }
  void Train(const Table& table, const TrainContext& context) override;
  double EstimateSelectivity(const Query& query) const override;
  size_t SizeBytes() const override;

 private:
  struct Box {
    std::vector<double> lo, hi;  // normalized code space, in [0, 1].
    double Volume() const;
  };

  Box QueryToBox(const Query& query) const;
  static double OverlapFraction(const Box& query_box, const Box& component);

  Options options_;
  // Per-column dictionaries for code-space normalization.
  std::vector<std::vector<double>> domains_;
  std::vector<Box> components_;
  std::vector<double> weights_;
};

}  // namespace arecel

#endif  // ARECEL_ESTIMATORS_TRADITIONAL_QUICKSEL_H_
