#include "estimators/traditional/mhist.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/check.h"
#include "util/random.h"

namespace arecel {

void MhistEstimator::ComputeSplitCandidate(const Table& table,
                                           Bucket* bucket) const {
  bucket->best_maxdiff = 0.0;
  bucket->best_dim = -1;
  if (bucket->rows.size() < 2) return;
  for (size_t d = 0; d < num_cols_; ++d) {
    const auto& values = table.column(d).values;
    // Marginal frequency of each distinct value inside the bucket.
    std::map<double, double> freq;
    for (uint32_t r : bucket->rows) freq[values[r]] += 1.0;
    bucket->distinct[d] = static_cast<int>(freq.size());
    if (freq.size() < 2) continue;
    // MaxDiff(V, A): area = frequency * spread (distance to next value);
    // find the largest difference between adjacent areas.
    std::vector<std::pair<double, double>> marginal(freq.begin(), freq.end());
    double prev_area = 0.0;
    for (size_t i = 0; i < marginal.size(); ++i) {
      const double spread = i + 1 < marginal.size()
                                ? marginal[i + 1].first - marginal[i].first
                                : marginal[i].first - marginal[i - 1].first;
      const double area = marginal[i].second * std::max(spread, 1e-9);
      if (i > 0) {
        const double diff = std::fabs(area - prev_area);
        if (diff > bucket->best_maxdiff) {
          bucket->best_maxdiff = diff;
          bucket->best_dim = static_cast<int>(d);
          bucket->best_split = marginal[i - 1].first;
        }
      }
      prev_area = area;
    }
  }
}

void MhistEstimator::Train(const Table& table, const TrainContext& context) {
  num_cols_ = table.num_cols();
  buckets_.clear();

  // Bucket directory entry cost: 2 bounds + 1 distinct count per dim plus
  // the count, all 8 bytes. Respect min(budget, max_buckets).
  const size_t entry_bytes = (2 * num_cols_ + num_cols_ + 1) * 8;
  const size_t budget_bytes = static_cast<size_t>(
      static_cast<double>(table.DataSizeBytes()) *
      context.size_budget_fraction);
  const int budget_buckets = static_cast<int>(
      std::max<size_t>(8, budget_bytes / entry_bytes));
  const int max_buckets = std::min(options_.max_buckets, budget_buckets);

  // Root bucket over a (possibly subsampled) row set.
  std::vector<uint32_t> rows;
  if (table.num_rows() > options_.max_build_rows) {
    Rng rng(context.seed);
    const std::vector<int> sampled = rng.SampleWithoutReplacement(
        static_cast<int>(table.num_rows()),
        static_cast<int>(options_.max_build_rows));
    rows.assign(sampled.begin(), sampled.end());
  } else {
    rows.resize(table.num_rows());
    for (size_t r = 0; r < rows.size(); ++r) rows[r] = static_cast<uint32_t>(r);
  }
  const double total_rows = static_cast<double>(rows.size());

  Bucket root;
  root.lo.resize(num_cols_);
  root.hi.resize(num_cols_);
  root.distinct.assign(num_cols_, 0);
  for (size_t d = 0; d < num_cols_; ++d) {
    root.lo[d] = table.column(d).min();
    root.hi[d] = table.column(d).max();
  }
  root.rows = std::move(rows);
  root.row_fraction = 1.0;
  ComputeSplitCandidate(table, &root);
  buckets_.push_back(std::move(root));

  while (static_cast<int>(buckets_.size()) < max_buckets) {
    // MHIST-2: split the bucket holding the globally largest maxdiff.
    int victim = -1;
    double best = 0.0;
    for (size_t b = 0; b < buckets_.size(); ++b) {
      if (buckets_[b].best_dim >= 0 && buckets_[b].best_maxdiff > best) {
        best = buckets_[b].best_maxdiff;
        victim = static_cast<int>(b);
      }
    }
    if (victim < 0) break;  // nothing left to split.

    Bucket& old = buckets_[static_cast<size_t>(victim)];
    const size_t dim = static_cast<size_t>(old.best_dim);
    const double split = old.best_split;
    const auto& values = table.column(dim).values;

    Bucket left, right;
    left.lo = old.lo;
    left.hi = old.hi;
    left.hi[dim] = split;
    right.lo = old.lo;
    right.hi = old.hi;
    right.lo[dim] = split;  // refined to actual min below.
    left.distinct.assign(num_cols_, 0);
    right.distinct.assign(num_cols_, 0);
    double right_min = old.hi[dim];
    for (uint32_t r : old.rows) {
      if (values[r] <= split) {
        left.rows.push_back(r);
      } else {
        right.rows.push_back(r);
        right_min = std::min(right_min, values[r]);
      }
    }
    right.lo[dim] = right_min;
    ARECEL_CHECK(!left.rows.empty() && !right.rows.empty());
    left.row_fraction = static_cast<double>(left.rows.size()) / total_rows;
    right.row_fraction = static_cast<double>(right.rows.size()) / total_rows;
    ComputeSplitCandidate(table, &left);
    ComputeSplitCandidate(table, &right);
    buckets_[static_cast<size_t>(victim)] = std::move(left);
    buckets_.push_back(std::move(right));
  }

  for (Bucket& bucket : buckets_) {
    bucket.rows.clear();
    bucket.rows.shrink_to_fit();
  }
}

double MhistEstimator::EstimateSelectivity(const Query& query) const {
  ARECEL_CHECK_MSG(!buckets_.empty(), "Train() must run first");
  double total = 0.0;
  for (const Bucket& bucket : buckets_) {
    double fraction = bucket.row_fraction;
    for (const Predicate& p : query.predicates) {
      const size_t d = static_cast<size_t>(p.column);
      const double b_lo = bucket.lo[d];
      const double b_hi = bucket.hi[d];
      if (p.hi < b_lo || p.lo > b_hi) {
        fraction = 0.0;
        break;
      }
      if (p.is_equality()) {
        // Uniform-distinct assumption: the point holds 1/distinct of the
        // bucket's mass in this dimension.
        fraction /= std::max(1, bucket.distinct[d]);
        continue;
      }
      if (b_hi > b_lo) {
        const double overlap = std::min(p.hi, b_hi) - std::max(p.lo, b_lo);
        fraction *= std::clamp(overlap / (b_hi - b_lo), 0.0, 1.0);
      }
      // Zero-width bucket dimension inside the range: full containment.
    }
    total += fraction;
  }
  return std::clamp(total, 0.0, 1.0);
}

size_t MhistEstimator::SizeBytes() const {
  return buckets_.size() * (2 * num_cols_ + num_cols_ + 1) * 8;
}

bool MhistEstimator::SerializeModel(ByteWriter* writer) const {
  writer->U64(num_cols_);
  writer->U64(buckets_.size());
  for (const Bucket& bucket : buckets_) {
    writer->Doubles(bucket.lo);
    writer->Doubles(bucket.hi);
    writer->Ints(bucket.distinct);
    writer->F64(bucket.row_fraction);
  }
  return true;
}

bool MhistEstimator::DeserializeModel(ByteReader* reader) {
  uint64_t cols = 0, count = 0;
  if (!reader->U64(&cols) || !reader->U64(&count) || cols == 0 ||
      cols > 4096 || count > (1u << 22)) {
    return false;
  }
  std::vector<Bucket> buckets(count);
  for (Bucket& bucket : buckets) {
    if (!reader->Doubles(&bucket.lo) || !reader->Doubles(&bucket.hi) ||
        !reader->Ints(&bucket.distinct) || !reader->F64(&bucket.row_fraction))
      return false;
    if (bucket.lo.size() != cols || bucket.hi.size() != cols ||
        bucket.distinct.size() != cols || bucket.row_fraction < 0.0)
      return false;
  }
  num_cols_ = cols;
  buckets_ = std::move(buckets);
  return true;
}

}  // namespace arecel
