#include "estimators/traditional/sampling.h"

#include <algorithm>

#include "scan/block_scan.h"

namespace arecel {

SamplingEstimator::SamplingEstimator(size_t max_sample_rows)
    : max_sample_rows_(max_sample_rows) {}

SamplingEstimator::~SamplingEstimator() = default;

void SamplingEstimator::RebuildScanner() {
  scanner_ = sample_.num_rows() > 0
                 ? std::make_unique<scan::BlockScanner>(sample_)
                 : nullptr;
}

void SamplingEstimator::Train(const Table& table,
                              const TrainContext& context) {
  size_t rows = static_cast<size_t>(static_cast<double>(table.num_rows()) *
                                    context.size_budget_fraction);
  rows = std::clamp<size_t>(rows, std::min<size_t>(table.num_rows(), 100),
                            std::min(max_sample_rows_, table.num_rows()));
  sample_ = table.SampleRows(rows, context.seed);
  RebuildScanner();
}

double SamplingEstimator::EstimateSelectivity(const Query& query) const {
  if (scanner_ == nullptr) return ExecuteSelectivity(sample_, query);
  return scanner_->Selectivity(query);
}

bool SamplingEstimator::SerializeModel(ByteWriter* writer) const {
  writer->Str(sample_.name());
  writer->U64(sample_.num_cols());
  for (size_t c = 0; c < sample_.num_cols(); ++c) {
    const Column& col = sample_.column(c);
    writer->Str(col.name);
    writer->U32(col.categorical ? 1 : 0);
    writer->Doubles(col.values);
  }
  return true;
}

bool SamplingEstimator::DeserializeModel(ByteReader* reader) {
  std::string name;
  uint64_t cols = 0;
  if (!reader->Str(&name) || !reader->U64(&cols) || cols > 4096) return false;
  Table loaded(name);
  for (uint64_t c = 0; c < cols; ++c) {
    std::string col_name;
    uint32_t categorical = 0;
    std::vector<double> values;
    if (!reader->Str(&col_name) || !reader->U32(&categorical) ||
        !reader->Doubles(&values)) {
      return false;
    }
    loaded.AddColumn(std::move(col_name), std::move(values),
                     categorical != 0);
  }
  loaded.Finalize();
  sample_ = std::move(loaded);
  RebuildScanner();
  return true;
}

}  // namespace arecel
