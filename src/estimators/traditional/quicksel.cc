#include "estimators/traditional/quicksel.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/random.h"

namespace arecel {

double QuickSelEstimator::Box::Volume() const {
  double v = 1.0;
  for (size_t d = 0; d < lo.size(); ++d) v *= std::max(hi[d] - lo[d], 0.0);
  return v;
}

QuickSelEstimator::Box QuickSelEstimator::QueryToBox(
    const Query& query) const {
  Box box;
  const size_t n = domains_.size();
  box.lo.assign(n, 0.0);
  box.hi.assign(n, 1.0);
  for (const Predicate& p : query.predicates) {
    const size_t c = static_cast<size_t>(p.column);
    const auto& domain = domains_[c];
    const double size = static_cast<double>(domain.size());
    // First code >= lo and last code <= hi; the box covers the code cells
    // [first, last + 1) normalized by the domain size.
    const auto first_it =
        std::lower_bound(domain.begin(), domain.end(), p.lo);
    const auto last_it = std::upper_bound(domain.begin(), domain.end(), p.hi);
    const double first = static_cast<double>(first_it - domain.begin());
    const double last = static_cast<double>(last_it - domain.begin());
    box.lo[c] = std::clamp(first / size, 0.0, 1.0);
    box.hi[c] = std::clamp(last / size, 0.0, 1.0);
  }
  return box;
}

double QuickSelEstimator::OverlapFraction(const Box& query_box,
                                          const Box& component) {
  const double component_volume = component.Volume();
  if (component_volume <= 0.0) return 0.0;
  double intersection = 1.0;
  for (size_t d = 0; d < query_box.lo.size(); ++d) {
    const double lo = std::max(query_box.lo[d], component.lo[d]);
    const double hi = std::min(query_box.hi[d], component.hi[d]);
    if (hi <= lo) return 0.0;
    intersection *= hi - lo;
  }
  return intersection / component_volume;
}

void QuickSelEstimator::Train(const Table& table,
                              const TrainContext& context) {
  ARECEL_CHECK_MSG(context.training_workload != nullptr &&
                       context.training_workload->size() > 0,
                   "QuickSel is query-driven and needs a labelled workload");
  domains_.resize(table.num_cols());
  for (size_t c = 0; c < table.num_cols(); ++c)
    domains_[c] = table.column(c).domain;

  const Workload& workload = *context.training_workload;

  // Mixture components: the whole-domain box plus a subsample of training
  // query boxes.
  components_.clear();
  Box whole;
  whole.lo.assign(table.num_cols(), 0.0);
  whole.hi.assign(table.num_cols(), 1.0);
  components_.push_back(whole);
  Rng rng(context.seed);
  std::vector<size_t> order(workload.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.Shuffle(order);
  const size_t m = std::min(options_.max_mixture_components - 1,
                            workload.size());
  for (size_t i = 0; i < m; ++i) {
    Box box = QueryToBox(workload.queries[order[i]]);
    if (box.Volume() > 0.0) components_.push_back(std::move(box));
  }

  // Feedback constraints: all training queries.
  const size_t n_constraints = workload.size();
  const size_t n_components = components_.size();
  std::vector<std::vector<double>> a(n_constraints);
  std::vector<double> s(n_constraints);
  for (size_t i = 0; i < n_constraints; ++i) {
    const Box query_box = QueryToBox(workload.queries[i]);
    a[i].resize(n_components);
    for (size_t j = 0; j < n_components; ++j)
      a[i][j] = OverlapFraction(query_box, components_[j]);
    s[i] = workload.selectivities[i];
  }

  // Projected gradient on the probability simplex.
  weights_.assign(n_components, 1.0 / static_cast<double>(n_components));
  std::vector<double> residual(n_constraints);
  std::vector<double> grad(n_components);
  auto project_simplex = [&](std::vector<double>& w) {
    // Euclidean projection (Duchi et al. 2008).
    std::vector<double> sorted = w;
    std::sort(sorted.begin(), sorted.end(), std::greater<double>());
    double cumulative = 0.0;
    double theta = 0.0;
    int rho = 0;
    for (size_t k = 0; k < sorted.size(); ++k) {
      cumulative += sorted[k];
      const double t = (cumulative - 1.0) / static_cast<double>(k + 1);
      if (sorted[k] - t > 0.0) {
        rho = static_cast<int>(k + 1);
        theta = t;
      }
    }
    ARECEL_CHECK(rho > 0);
    for (double& wi : w) wi = std::max(0.0, wi - theta);
  };
  const double inv_n = 1.0 / static_cast<double>(n_constraints);
  for (int iter = 0; iter < options_.solver_iterations; ++iter) {
    for (size_t i = 0; i < n_constraints; ++i) {
      double estimate = 0.0;
      for (size_t j = 0; j < n_components; ++j)
        estimate += a[i][j] * weights_[j];
      residual[i] = estimate - s[i];
    }
    std::fill(grad.begin(), grad.end(), 0.0);
    for (size_t i = 0; i < n_constraints; ++i) {
      const double r = residual[i];
      if (r == 0.0) continue;
      for (size_t j = 0; j < n_components; ++j) grad[j] += 2.0 * r * a[i][j];
    }
    for (size_t j = 0; j < n_components; ++j)
      weights_[j] -= options_.solver_learning_rate * grad[j] * inv_n;
    project_simplex(weights_);
  }
}

double QuickSelEstimator::EstimateSelectivity(const Query& query) const {
  ARECEL_CHECK_MSG(!components_.empty(), "Train() must run first");
  const Box query_box = QueryToBox(query);
  double selectivity = 0.0;
  for (size_t j = 0; j < components_.size(); ++j)
    selectivity += weights_[j] * OverlapFraction(query_box, components_[j]);
  return std::clamp(selectivity, 0.0, 1.0);
}

size_t QuickSelEstimator::SizeBytes() const {
  size_t total = weights_.size() * sizeof(double);
  for (const Box& box : components_)
    total += (box.lo.size() + box.hi.size()) * sizeof(double);
  return total;
}

}  // namespace arecel
