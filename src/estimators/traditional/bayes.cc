#include "estimators/traditional/bayes.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "util/check.h"
#include "util/random.h"

namespace arecel {

std::vector<double> BayesEstimator::CoverageWeights(size_t col, double lo,
                                                    double hi) const {
  const ColumnBins& cb = bins_[col];
  std::vector<double> weights(static_cast<size_t>(cb.num_bins()), 0.0);
  if (lo > hi) return weights;
  for (int b = 0; b < cb.num_bins(); ++b) {
    const double b_lo = cb.bin_min[static_cast<size_t>(b)];
    const double b_hi = cb.bin_max[static_cast<size_t>(b)];
    if (hi < b_lo || lo > b_hi) continue;
    if (lo <= b_lo && b_hi <= hi) {
      weights[static_cast<size_t>(b)] = 1.0;
      continue;
    }
    // Partial coverage: assume the bin's distinct values spread uniformly.
    if (b_hi > b_lo) {
      const double overlap = std::min(hi, b_hi) - std::max(lo, b_lo);
      weights[static_cast<size_t>(b)] =
          std::clamp(overlap / (b_hi - b_lo), 0.0, 1.0);
    } else {
      weights[static_cast<size_t>(b)] = 1.0;
    }
  }
  return weights;
}

void BayesEstimator::Train(const Table& table, const TrainContext& context) {
  const size_t n = table.num_cols();
  ARECEL_CHECK(n >= 1);

  // Row subsample for structure and parameter learning.
  std::vector<uint32_t> rows;
  if (table.num_rows() > options_.max_build_rows) {
    Rng rng(context.seed);
    const std::vector<int> sampled = rng.SampleWithoutReplacement(
        static_cast<int>(table.num_rows()),
        static_cast<int>(options_.max_build_rows));
    rows.assign(sampled.begin(), sampled.end());
  } else {
    rows.resize(table.num_rows());
    for (size_t r = 0; r < rows.size(); ++r) rows[r] = static_cast<uint32_t>(r);
  }
  const size_t m = rows.size();

  // --- Per-column equal-mass binning over codes. ---
  bins_.assign(n, ColumnBins());
  std::vector<std::vector<int>> row_bins(n, std::vector<int>(m));
  for (size_t c = 0; c < n; ++c) {
    const Column& col = table.column(c);
    const int domain = static_cast<int>(col.domain.size());
    ColumnBins& cb = bins_[c];
    std::vector<int> code_to_bin(static_cast<size_t>(domain));
    if (domain <= options_.max_bins) {
      cb.bin_min = col.domain;
      cb.bin_max = col.domain;
      cb.bin_values.assign(static_cast<size_t>(domain), 1);
      for (int v = 0; v < domain; ++v) code_to_bin[static_cast<size_t>(v)] = v;
    } else {
      // Greedy equal-mass packing of sorted distinct values.
      std::vector<size_t> counts(static_cast<size_t>(domain), 0);
      for (uint32_t r : rows) ++counts[static_cast<size_t>(col.codes[r])];
      const double target =
          static_cast<double>(m) / static_cast<double>(options_.max_bins);
      size_t bin_rows = 0;
      int bin_index = 0;
      cb.bin_min.push_back(col.domain[0]);
      int values_in_bin = 0;
      for (int v = 0; v < domain; ++v) {
        code_to_bin[static_cast<size_t>(v)] = bin_index;
        bin_rows += counts[static_cast<size_t>(v)];
        ++values_in_bin;
        const bool last = v + 1 == domain;
        if ((static_cast<double>(bin_rows) >= target && !last &&
             bin_index + 1 < options_.max_bins) ||
            last) {
          cb.bin_max.push_back(col.domain[static_cast<size_t>(v)]);
          cb.bin_values.push_back(values_in_bin);
          if (!last) {
            cb.bin_min.push_back(col.domain[static_cast<size_t>(v) + 1]);
            ++bin_index;
            bin_rows = 0;
            values_in_bin = 0;
          }
        }
      }
    }
    for (size_t i = 0; i < m; ++i)
      row_bins[c][i] = code_to_bin[static_cast<size_t>(col.codes[rows[i]])];
  }

  // --- Pairwise mutual information; Chow-Liu = max spanning tree. ---
  std::vector<std::vector<double>> mi(n, std::vector<double>(n, 0.0));
  for (size_t a = 0; a < n; ++a) {
    const int ba = bins_[a].num_bins();
    std::vector<double> pa(static_cast<size_t>(ba), 0.0);
    for (size_t i = 0; i < m; ++i)
      pa[static_cast<size_t>(row_bins[a][i])] += 1.0;
    for (double& v : pa) v /= static_cast<double>(m);
    for (size_t b = a + 1; b < n; ++b) {
      const int bb = bins_[b].num_bins();
      std::vector<double> pb(static_cast<size_t>(bb), 0.0);
      std::vector<double> pab(static_cast<size_t>(ba * bb), 0.0);
      for (size_t i = 0; i < m; ++i) {
        pb[static_cast<size_t>(row_bins[b][i])] += 1.0;
        pab[static_cast<size_t>(row_bins[a][i] * bb + row_bins[b][i])] += 1.0;
      }
      for (double& v : pb) v /= static_cast<double>(m);
      for (double& v : pab) v /= static_cast<double>(m);
      double info = 0.0;
      for (int x = 0; x < ba; ++x) {
        for (int y = 0; y < bb; ++y) {
          const double joint = pab[static_cast<size_t>(x * bb + y)];
          if (joint <= 0.0) continue;
          info += joint * std::log(joint / (pa[static_cast<size_t>(x)] *
                                            pb[static_cast<size_t>(y)]));
        }
      }
      mi[a][b] = mi[b][a] = info;
    }
  }

  // Prim's algorithm for the maximum spanning tree.
  parent_.assign(n, -1);
  root_ = 0;
  std::vector<bool> in_tree(n, false);
  std::vector<double> best_weight(n, -1.0);
  std::vector<int> best_parent(n, -1);
  in_tree[0] = true;
  for (size_t c = 1; c < n; ++c) {
    best_weight[c] = mi[0][c];
    best_parent[c] = 0;
  }
  for (size_t added = 1; added < n; ++added) {
    int next = -1;
    double best = -1.0;
    for (size_t c = 0; c < n; ++c) {
      if (!in_tree[c] && best_weight[c] > best) {
        best = best_weight[c];
        next = static_cast<int>(c);
      }
    }
    ARECEL_CHECK(next >= 0);
    in_tree[static_cast<size_t>(next)] = true;
    parent_[static_cast<size_t>(next)] = best_parent[static_cast<size_t>(next)];
    for (size_t c = 0; c < n; ++c) {
      if (!in_tree[c] && mi[static_cast<size_t>(next)][c] > best_weight[c]) {
        best_weight[c] = mi[static_cast<size_t>(next)][c];
        best_parent[c] = next;
      }
    }
  }
  children_.assign(n, {});
  for (size_t c = 0; c < n; ++c) {
    if (parent_[c] >= 0)
      children_[static_cast<size_t>(parent_[c])].push_back(
          static_cast<int>(c));
  }

  // --- CPTs with Laplace smoothing. ---
  root_marginal_.assign(static_cast<size_t>(bins_[static_cast<size_t>(root_)]
                                                .num_bins()),
                        options_.laplace);
  for (size_t i = 0; i < m; ++i)
    root_marginal_[static_cast<size_t>(
        row_bins[static_cast<size_t>(root_)][i])] += 1.0;
  {
    double total = 0.0;
    for (double v : root_marginal_) total += v;
    for (double& v : root_marginal_) v /= total;
  }
  cpt_.assign(n, {});
  for (size_t c = 0; c < n; ++c) {
    const int p = parent_[c];
    if (p < 0) continue;
    const int bc = bins_[c].num_bins();
    const int bp = bins_[static_cast<size_t>(p)].num_bins();
    std::vector<double>& table_c = cpt_[c];
    table_c.assign(static_cast<size_t>(bp * bc), options_.laplace);
    for (size_t i = 0; i < m; ++i) {
      const int a = row_bins[static_cast<size_t>(p)][i];
      const int b = row_bins[c][i];
      table_c[static_cast<size_t>(a * bc + b)] += 1.0;
    }
    for (int a = 0; a < bp; ++a) {
      double total = 0.0;
      for (int b = 0; b < bc; ++b) total += table_c[static_cast<size_t>(a * bc + b)];
      for (int b = 0; b < bc; ++b) table_c[static_cast<size_t>(a * bc + b)] /= total;
    }
  }
}

double BayesEstimator::EstimateSelectivity(const Query& query) const {
  ARECEL_CHECK_MSG(!bins_.empty(), "Train() must run first");
  const size_t n = bins_.size();
  // Per-column coverage weights (1.0 everywhere when unconstrained).
  std::vector<std::vector<double>> phi(n);
  for (size_t c = 0; c < n; ++c)
    phi[c].assign(static_cast<size_t>(bins_[c].num_bins()), 1.0);
  for (const Predicate& p : query.predicates) {
    const size_t c = static_cast<size_t>(p.column);
    const std::vector<double> w = CoverageWeights(c, p.lo, p.hi);
    for (size_t b = 0; b < w.size(); ++b) phi[c][b] *= w[b];
  }
  if (options_.inference == Inference::kProgressiveSampling)
    return EstimateSampled(phi);
  return EstimateExact(phi);
}

double BayesEstimator::EstimateExact(
    const std::vector<std::vector<double>>& phi) const {
  // Exact sum-product over the tree: message from child c to its parent,
  // m_c[a] = sum_b P(b | a) * phi_c[b] * prod(messages into c)[b].
  // Recursion depth = tree height <= n.
  std::function<std::vector<double>(int)> message =
      [&](int c) -> std::vector<double> {
    const size_t cs = static_cast<size_t>(c);
    const int bc = bins_[cs].num_bins();
    std::vector<double> belief = phi[cs];
    for (int child : children_[cs]) {
      const std::vector<double> child_message = message(child);
      for (int b = 0; b < bc; ++b)
        belief[static_cast<size_t>(b)] *= child_message[static_cast<size_t>(b)];
    }
    const int p = parent_[cs];
    ARECEL_CHECK(p >= 0);
    const int bp = bins_[static_cast<size_t>(p)].num_bins();
    std::vector<double> out(static_cast<size_t>(bp), 0.0);
    const std::vector<double>& table_c = cpt_[cs];
    for (int a = 0; a < bp; ++a) {
      double acc = 0.0;
      for (int b = 0; b < bc; ++b)
        acc += table_c[static_cast<size_t>(a * bc + b)] *
               belief[static_cast<size_t>(b)];
      out[static_cast<size_t>(a)] = acc;
    }
    return out;
  };

  const size_t rs = static_cast<size_t>(root_);
  std::vector<double> root_belief = phi[rs];
  for (int child : children_[rs]) {
    const std::vector<double> child_message = message(child);
    for (size_t b = 0; b < root_belief.size(); ++b)
      root_belief[b] *= child_message[b];
  }
  double probability = 0.0;
  for (size_t b = 0; b < root_belief.size(); ++b)
    probability += root_marginal_[b] * root_belief[b];
  return std::clamp(probability, 0.0, 1.0);
}

double BayesEstimator::EstimateSampled(
    const std::vector<std::vector<double>>& phi) const {
  // Progressive sampling root-down (the reference implementation's mode):
  // at each node draw a bin from the coverage-masked conditional and fold
  // the masked mass into the sample weight. Unbiased; variance shrinks
  // with sample_count.
  Rng rng(0x94d049bb133111ebULL ^ (estimate_counter_++ * 0x2545f4914f6cdd1dULL));

  // Topological (parent-before-child) order via BFS from the root.
  std::vector<int> order;
  order.reserve(bins_.size());
  order.push_back(root_);
  for (size_t i = 0; i < order.size(); ++i) {
    for (int child : children_[static_cast<size_t>(order[i])])
      order.push_back(child);
  }

  const size_t samples = static_cast<size_t>(options_.sample_count);
  std::vector<int> sampled_bin(bins_.size(), 0);
  double total = 0.0;
  std::vector<double> masked;
  for (size_t s = 0; s < samples; ++s) {
    double weight = 1.0;
    for (int c : order) {
      const size_t cs = static_cast<size_t>(c);
      const int bc = bins_[cs].num_bins();
      masked.assign(static_cast<size_t>(bc), 0.0);
      if (c == root_) {
        for (int b = 0; b < bc; ++b)
          masked[static_cast<size_t>(b)] =
              root_marginal_[static_cast<size_t>(b)] *
              phi[cs][static_cast<size_t>(b)];
      } else {
        const int a = sampled_bin[static_cast<size_t>(parent_[cs])];
        const std::vector<double>& table_c = cpt_[cs];
        for (int b = 0; b < bc; ++b)
          masked[static_cast<size_t>(b)] =
              table_c[static_cast<size_t>(a * bc + b)] *
              phi[cs][static_cast<size_t>(b)];
      }
      double mass = 0.0;
      for (double m : masked) mass += m;
      if (mass <= 0.0) {
        weight = 0.0;
        break;
      }
      weight *= mass;
      double target = rng.Uniform() * mass;
      int chosen = bc - 1;
      for (int b = 0; b < bc; ++b) {
        target -= masked[static_cast<size_t>(b)];
        if (target <= 0.0) {
          chosen = b;
          break;
        }
      }
      sampled_bin[cs] = chosen;
    }
    total += weight;
  }
  return std::clamp(total / static_cast<double>(samples), 0.0, 1.0);
}

size_t BayesEstimator::SizeBytes() const {
  size_t total = root_marginal_.size() * sizeof(double);
  for (const auto& table_c : cpt_) total += table_c.size() * sizeof(double);
  for (const auto& cb : bins_)
    total += (cb.bin_min.size() * 2 + cb.bin_values.size()) * sizeof(double);
  return total;
}

}  // namespace arecel
