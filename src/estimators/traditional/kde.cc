#include "estimators/traditional/kde.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/stats.h"

namespace arecel {

namespace {

// Standard normal CDF.
double Phi(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }
// Standard normal PDF.
double NormalPdf(double z) {
  return std::exp(-0.5 * z * z) / std::sqrt(2.0 * M_PI);
}

}  // namespace

double KdeFbEstimator::Evaluate(const Query& query,
                                std::vector<double>* bandwidth_grad) const {
  const size_t s_count = sample_.num_rows();
  if (s_count == 0) return 0.0;
  if (bandwidth_grad != nullptr)
    bandwidth_grad->assign(num_cols_, 0.0);

  // Collapse multiple predicates per column into one interval.
  std::vector<double> lo(num_cols_, -std::numeric_limits<double>::infinity());
  std::vector<double> hi(num_cols_, std::numeric_limits<double>::infinity());
  std::vector<bool> constrained(num_cols_, false);
  for (const Predicate& p : query.predicates) {
    const size_t c = static_cast<size_t>(p.column);
    lo[c] = std::max(lo[c], p.lo);
    hi[c] = std::min(hi[c], p.hi);
    constrained[c] = true;
  }
  // Continuity correction over the discrete domain: widen [lo, hi] to the
  // midpoint cell edges of the covered values, so an equality predicate
  // integrates the kernel over its value's cell rather than a zero-width
  // interval.
  for (size_t c = 0; c < num_cols_; ++c) {
    if (!constrained[c] || lo[c] > hi[c]) continue;
    const std::vector<double>& domain = domains_[c];
    if (domain.size() < 2) continue;
    if (!std::isinf(lo[c])) {
      const auto it = std::lower_bound(domain.begin(), domain.end(), lo[c]);
      if (it != domain.end() && *it <= hi[c]) {
        const size_t k = static_cast<size_t>(it - domain.begin());
        lo[c] = k == 0 ? domain[0] - (domain[1] - domain[0]) / 2.0
                       : (domain[k - 1] + domain[k]) / 2.0;
      }
    }
    if (!std::isinf(hi[c])) {
      // Last domain value <= hi.
      const auto it = std::upper_bound(domain.begin(), domain.end(), hi[c]);
      if (it != domain.begin()) {
        const size_t k = static_cast<size_t>(it - domain.begin()) - 1;
        if (domain[k] >= lo[c] || std::isinf(lo[c])) {
          hi[c] = k + 1 == domain.size()
                      ? domain[k] + (domain[k] - domain[k - 1]) / 2.0
                      : (domain[k] + domain[k + 1]) / 2.0;
        }
      }
    }
  }

  double estimate = 0.0;
  std::vector<double> mass(num_cols_);
  std::vector<double> dmass(num_cols_);  // d(mass)/d(log h).
  for (size_t s = 0; s < s_count; ++s) {
    double product = 1.0;
    for (size_t d = 0; d < num_cols_; ++d) {
      if (!constrained[d]) {
        mass[d] = 1.0;
        dmass[d] = 0.0;
        continue;
      }
      const double x = sample_.column(d).values[s];
      const double h = bandwidths_[d];
      const double z_hi = std::isinf(hi[d]) ? 40.0 : (hi[d] - x) / h;
      const double z_lo = std::isinf(lo[d]) ? -40.0 : (lo[d] - x) / h;
      mass[d] = std::max(Phi(z_hi) - Phi(z_lo), 0.0);
      if (bandwidth_grad != nullptr) {
        // d/d(log h) of Phi((b - x)/h) = -phi(z) * z.
        const double d_hi = std::isinf(hi[d]) ? 0.0 : -NormalPdf(z_hi) * z_hi;
        const double d_lo = std::isinf(lo[d]) ? 0.0 : -NormalPdf(z_lo) * z_lo;
        dmass[d] = d_hi - d_lo;
      }
      product *= mass[d];
    }
    estimate += product;
    if (bandwidth_grad != nullptr && product > 0.0) {
      for (size_t d = 0; d < num_cols_; ++d) {
        if (!constrained[d] || mass[d] <= 1e-300) continue;
        (*bandwidth_grad)[d] += product / mass[d] * dmass[d];
      }
    }
  }
  const double inv = 1.0 / static_cast<double>(s_count);
  if (bandwidth_grad != nullptr)
    for (double& g : *bandwidth_grad) g *= inv;
  return estimate * inv;
}

void KdeFbEstimator::Train(const Table& table, const TrainContext& context) {
  num_cols_ = table.num_cols();
  domains_.resize(num_cols_);
  for (size_t c = 0; c < num_cols_; ++c) domains_[c] = table.column(c).domain;
  size_t rows = static_cast<size_t>(static_cast<double>(table.num_rows()) *
                                    context.size_budget_fraction);
  rows = std::clamp<size_t>(rows, std::min<size_t>(table.num_rows(), 100),
                            std::min(options_.max_sample_rows,
                                     table.num_rows()));
  sample_ = table.SampleRows(rows, context.seed);

  // Scott's rule initialization: h_d = sigma_d * S^(-1/(d+4)).
  bandwidths_.assign(num_cols_, 1.0);
  const double exponent =
      -1.0 / (static_cast<double>(num_cols_) + 4.0);
  const double factor = std::pow(static_cast<double>(rows), exponent);
  for (size_t d = 0; d < num_cols_; ++d) {
    const double sigma = StdDev(sample_.column(d).values);
    bandwidths_[d] = std::max(sigma * factor, 1e-3);
  }

  // Feedback: gradient descent on log-bandwidths against squared error.
  if (context.training_workload == nullptr ||
      context.training_workload->size() == 0) {
    return;  // plain KDE (no feedback available).
  }
  const Workload& workload = *context.training_workload;
  const size_t n_feedback = std::min(options_.feedback_queries,
                                     workload.size());
  std::vector<double> grad(num_cols_), total_grad(num_cols_);
  for (int iter = 0; iter < options_.feedback_iterations; ++iter) {
    std::fill(total_grad.begin(), total_grad.end(), 0.0);
    for (size_t i = 0; i < n_feedback; ++i) {
      const double est = Evaluate(workload.queries[i], &grad);
      const double residual = est - workload.selectivities[i];
      for (size_t d = 0; d < num_cols_; ++d)
        total_grad[d] += 2.0 * residual * grad[d];
    }
    const double inv = 1.0 / static_cast<double>(n_feedback);
    for (size_t d = 0; d < num_cols_; ++d) {
      const double step =
          options_.feedback_learning_rate * total_grad[d] * inv;
      bandwidths_[d] *= std::exp(-std::clamp(step, -0.5, 0.5));
      bandwidths_[d] = std::clamp(bandwidths_[d], 1e-4, 1e6);
    }
  }
}

double KdeFbEstimator::EstimateSelectivity(const Query& query) const {
  ARECEL_CHECK_MSG(num_cols_ > 0, "Train() must run first");
  if (!query.IsSatisfiable()) return 0.0;
  return std::clamp(Evaluate(query, nullptr), 0.0, 1.0);
}

size_t KdeFbEstimator::SizeBytes() const {
  return sample_.DataSizeBytes() + bandwidths_.size() * sizeof(double);
}

}  // namespace arecel
