#ifndef ARECEL_ESTIMATORS_TRADITIONAL_DBMS_H_
#define ARECEL_ESTIMATORS_TRADITIONAL_DBMS_H_

#include <string>
#include <vector>

#include "core/estimator.h"
#include "ml/histogram.h"

namespace arecel {

// Reimplementations of the estimation logic of the three database systems
// the paper benchmarks (§4.1 "Traditional Techniques"). Each keeps
// per-column statistics (MCV list + equi-depth histogram) and differs in
// the statistics resolution and in how per-predicate selectivities are
// combined:
//  * Postgres-like / MySQL-like: attribute value independence (product);
//  * DBMS-A-like: exponential backoff over the k most selective predicates
//    (s1 * s2^(1/2) * s3^(1/4) * s4^(1/8)), the combination used by a
//    leading commercial system.
class PerColumnStatsEstimator : public CardinalityEstimator {
 public:
  enum class Combination { kIndependence, kExponentialBackoff };

  PerColumnStatsEstimator(std::string name, ColumnStats::Options options,
                          Combination combination)
      : name_(std::move(name)),
        options_(options),
        combination_(combination) {}

  std::string Name() const override { return name_; }
  void Train(const Table& table, const TrainContext& context) override;
  double EstimateSelectivity(const Query& query) const override;
  size_t SizeBytes() const override;
  bool SerializeModel(ByteWriter* writer) const override;
  bool DeserializeModel(ByteReader* reader) override;

 private:
  std::string name_;
  ColumnStats::Options options_;
  Combination combination_;
  std::vector<ColumnStats> stats_;
};

// Factory helpers with the statistics targets used in the paper (set to the
// system's upper limit: 10000 for Postgres, 1024 for MySQL).
std::unique_ptr<CardinalityEstimator> MakePostgresEstimator();
std::unique_ptr<CardinalityEstimator> MakeMysqlEstimator();
std::unique_ptr<CardinalityEstimator> MakeDbmsAEstimator();

}  // namespace arecel

#endif  // ARECEL_ESTIMATORS_TRADITIONAL_DBMS_H_
