#ifndef ARECEL_ESTIMATORS_TRADITIONAL_MHIST_H_
#define ARECEL_ESTIMATORS_TRADITIONAL_MHIST_H_

#include <string>
#include <vector>

#include "core/estimator.h"

namespace arecel {

// MHIST-2 (Poosala & Ioannidis, VLDB'97) with the MaxDiff(V, A) partition
// constraint the paper selects (§4.1): a multidimensional histogram built
// by repeatedly splitting the bucket that contains the largest difference
// between adjacent "areas" (value frequency x spread) along any dimension.
// Splitting stops when the bucket directory reaches the size budget.
//
// Estimation assumes uniform value spread inside each bucket and
// independence across dimensions within the bucket.
class MhistEstimator : public CardinalityEstimator {
 public:
  struct Options {
    int max_buckets = 400;  // overridden by the size budget when smaller.
    size_t max_build_rows = 200000;  // row subsample cap for construction.
  };

  MhistEstimator() : MhistEstimator(Options()) {}
  explicit MhistEstimator(Options options) : options_(options) {}

  std::string Name() const override { return "mhist"; }
  void Train(const Table& table, const TrainContext& context) override;
  double EstimateSelectivity(const Query& query) const override;
  size_t SizeBytes() const override;
  bool SerializeModel(ByteWriter* writer) const override;
  bool DeserializeModel(ByteReader* reader) override;

  size_t num_buckets() const { return buckets_.size(); }

 private:
  struct Bucket {
    std::vector<double> lo, hi;        // per-dim value bounds (inclusive).
    std::vector<int> distinct;         // per-dim distinct count inside.
    double row_fraction = 0.0;         // of the training table.
    // Split bookkeeping (cleared once building finishes).
    std::vector<uint32_t> rows;
    double best_maxdiff = 0.0;
    int best_dim = -1;
    double best_split = 0.0;  // values <= split go left.
  };

  void ComputeSplitCandidate(const Table& table, Bucket* bucket) const;

  Options options_;
  std::vector<Bucket> buckets_;
  size_t num_cols_ = 0;
};

}  // namespace arecel

#endif  // ARECEL_ESTIMATORS_TRADITIONAL_MHIST_H_
