#ifndef ARECEL_ESTIMATORS_TRADITIONAL_SAMPLING_H_
#define ARECEL_ESTIMATORS_TRADITIONAL_SAMPLING_H_

#include <memory>
#include <string>

#include "core/estimator.h"

namespace arecel {

namespace scan {
class BlockScanner;
}  // namespace scan

// Uniform-random-sample estimator (§4.1): keeps a 1.5%-of-data sample
// (matching the learned models' size budget) and answers a query with the
// fraction of sample rows that satisfy it. The sample scan runs on the
// vectorized block-scan engine: a scanner (zone maps + selection vectors)
// is built once per (re)trained sample and reused by every estimate.
class SamplingEstimator : public CardinalityEstimator {
 public:
  // `max_sample_rows` caps the sample like the paper's 150K cap for KDE.
  // Constructor/destructor live in the .cc so this header can hold the
  // scanner behind a forward declaration.
  explicit SamplingEstimator(size_t max_sample_rows = 150000);
  ~SamplingEstimator() override;

  std::string Name() const override { return "sampling"; }
  void Train(const Table& table, const TrainContext& context) override;
  double EstimateSelectivity(const Query& query) const override;
  size_t SizeBytes() const override { return sample_.DataSizeBytes(); }
  bool SerializeModel(ByteWriter* writer) const override;
  bool DeserializeModel(ByteReader* reader) override;

 private:
  // Rebuilds the scanner over the current sample_ (call after every
  // assignment to sample_; the scanner holds a pointer to it).
  void RebuildScanner();

  size_t max_sample_rows_;
  Table sample_;
  std::unique_ptr<scan::BlockScanner> scanner_;
};

}  // namespace arecel

#endif  // ARECEL_ESTIMATORS_TRADITIONAL_SAMPLING_H_
