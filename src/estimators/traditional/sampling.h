#ifndef ARECEL_ESTIMATORS_TRADITIONAL_SAMPLING_H_
#define ARECEL_ESTIMATORS_TRADITIONAL_SAMPLING_H_

#include <string>

#include "core/estimator.h"

namespace arecel {

// Uniform-random-sample estimator (§4.1): keeps a 1.5%-of-data sample
// (matching the learned models' size budget) and answers a query with the
// fraction of sample rows that satisfy it.
class SamplingEstimator : public CardinalityEstimator {
 public:
  // `max_sample_rows` caps the sample like the paper's 150K cap for KDE.
  explicit SamplingEstimator(size_t max_sample_rows = 150000)
      : max_sample_rows_(max_sample_rows) {}

  std::string Name() const override { return "sampling"; }
  void Train(const Table& table, const TrainContext& context) override;
  double EstimateSelectivity(const Query& query) const override;
  size_t SizeBytes() const override { return sample_.DataSizeBytes(); }
  bool SerializeModel(ByteWriter* writer) const override;
  bool DeserializeModel(ByteReader* reader) override;

 private:
  size_t max_sample_rows_;
  Table sample_;
};

}  // namespace arecel

#endif  // ARECEL_ESTIMATORS_TRADITIONAL_SAMPLING_H_
