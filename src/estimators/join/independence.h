#ifndef ARECEL_ESTIMATORS_JOIN_INDEPENDENCE_H_
#define ARECEL_ESTIMATORS_JOIN_INDEPENDENCE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/estimator.h"
#include "ml/histogram.h"

namespace arecel {

// Postgres-style join baseline ("postgres-join"): per-table per-column
// statistics (MCVs + equi-depth histogram, ml/histogram.h) combined under
// full independence —
//   sel(join query) = prod_t sel_t(predicates on t)
//                   * prod_edges 1 / max(distinct(left), distinct(right)),
// the textbook eqjoinsel formula against the Cartesian-product denominator.
// Deliberately blind to FK skew and cross-table correlation: the foil the
// learned join estimators are measured against (bench/bench_join.cc).
class JoinIndependenceEstimator : public CardinalityEstimator {
 public:
  explicit JoinIndependenceEstimator(ColumnStats::Options options = {
                                         .num_buckets = 1000,
                                         .num_mcvs = 1000});

  std::string Name() const override { return "postgres-join"; }
  void Train(const Table& table, const TrainContext& context) override;
  double EstimateSelectivity(const Query& query) const override;
  size_t SizeBytes() const override;

  bool SupportsJoins() const override { return true; }
  void TrainJoin(const Schema& schema,
                 const JoinTrainContext& context) override;
  double EstimateJoinSelectivity(const JoinQuery& query) const override;

 private:
  struct TableStats {
    std::string name;
    size_t rows = 0;
    std::vector<ColumnStats> columns;
  };
  const TableStats* Find(const std::string& name) const;

  ColumnStats::Options options_;
  std::vector<TableStats> stats_;
  std::string single_table_;  // routing name for the single-table contract.
};

std::unique_ptr<CardinalityEstimator> MakeJoinIndependenceEstimator();

}  // namespace arecel

#endif  // ARECEL_ESTIMATORS_JOIN_INDEPENDENCE_H_
