#include "estimators/join/join_sampling.h"

#include <algorithm>
#include <unordered_map>

#include "estimators/join/join_support.h"
#include "util/check.h"
#include "util/random.h"

namespace arecel {
namespace {

bool SlicePredicatesHold(const std::vector<Predicate>& preds,
                         const std::vector<std::vector<double>>& columns,
                         size_t row) {
  for (const Predicate& p : preds) {
    ARECEL_CHECK(p.column >= 0 &&
                 static_cast<size_t>(p.column) < columns.size());
    if (!p.Matches(columns[static_cast<size_t>(p.column)][row])) return false;
  }
  return true;
}

}  // namespace

JoinSamplingEstimator::JoinSamplingEstimator(size_t max_sample_rows)
    : max_sample_rows_(std::max<size_t>(1, max_sample_rows)) {}

void JoinSamplingEstimator::TrainJoin(const Schema& schema,
                                      const JoinTrainContext& context) {
  center_ = StarCenterTable(schema);
  joined_.clear();
  per_table_.clear();
  center_columns_.clear();
  center_sample_rows_ = 0;

  Rng rng(context.seed);

  // Per-table uniform samples for the single-table path.
  for (const Table& table : schema.tables()) {
    TableSample ts;
    ts.name = table.name();
    ts.table_rows = table.num_rows();
    ts.sample_rows = std::min(table.num_rows(), max_sample_rows_);
    ts.columns.assign(table.num_cols(),
                      std::vector<double>(ts.sample_rows));
    if (ts.sample_rows > 0) {
      const std::vector<int> rows = rng.SampleWithoutReplacement(
          static_cast<int>(table.num_rows()),
          static_cast<int>(ts.sample_rows));
      for (size_t c = 0; c < table.num_cols(); ++c) {
        const std::vector<double>& values = table.column(c).values;
        for (size_t i = 0; i < rows.size(); ++i) {
          ts.columns[c][i] = values[static_cast<size_t>(rows[i])];
        }
      }
    }
    per_table_.push_back(std::move(ts));
  }

  // Correlated joined sample anchored on the center.
  const Table& center = schema.table(center_);
  center_sample_rows_ = std::min(center.num_rows(), max_sample_rows_);
  std::vector<int> picks;
  if (center_sample_rows_ > 0) {
    picks = rng.SampleWithoutReplacement(
        static_cast<int>(center.num_rows()),
        static_cast<int>(center_sample_rows_));
  }
  center_columns_.assign(center.num_cols(),
                         std::vector<double>(center_sample_rows_));
  for (size_t c = 0; c < center.num_cols(); ++c) {
    const std::vector<double>& values = center.column(c).values;
    for (size_t i = 0; i < picks.size(); ++i) {
      center_columns_[c][i] = values[static_cast<size_t>(picks[i])];
    }
  }

  for (const ForeignKey& fk : schema.foreign_keys()) {
    const bool center_referencing = fk.table == center_;
    const std::string& dim_name =
        center_referencing ? fk.ref_table : fk.table;
    const int center_col = center_referencing ? fk.column : fk.ref_column;
    const int dim_col = center_referencing ? fk.ref_column : fk.column;
    const Table& dim = schema.table(dim_name);

    // Key -> (representative row, multiplicity).
    std::unordered_map<double, std::pair<size_t, double>> index;
    const std::vector<double>& keys =
        dim.column(static_cast<size_t>(dim_col)).values;
    index.reserve(keys.size());
    for (size_t r = 0; r < keys.size(); ++r) {
      auto [it, inserted] = index.try_emplace(keys[r], r, 1.0);
      if (!inserted) it->second.second += 1.0;
    }

    JoinedDimension jd;
    jd.name = dim_name;
    jd.table_rows = dim.num_rows();
    jd.columns.assign(dim.num_cols(),
                      std::vector<double>(center_sample_rows_, 0.0));
    jd.weight.assign(center_sample_rows_, 0.0);
    const std::vector<double>& fk_values =
        center_columns_[static_cast<size_t>(center_col)];
    for (size_t i = 0; i < center_sample_rows_; ++i) {
      const auto it = index.find(fk_values[i]);
      if (it == index.end()) continue;  // dangling FK: weight stays 0.
      jd.weight[i] = it->second.second;
      const size_t row = it->second.first;
      for (size_t c = 0; c < dim.num_cols(); ++c) {
        jd.columns[c][i] = dim.column(c).values[row];
      }
    }
    joined_.push_back(std::move(jd));
  }
}

void JoinSamplingEstimator::Train(const Table& table,
                                  const TrainContext& context) {
  single_table_ = WrappedTableName(table);
  JoinTrainContext join_context;
  join_context.seed = context.seed;
  TrainJoin(WrapSingleTable(table), join_context);
}

const JoinSamplingEstimator::TableSample* JoinSamplingEstimator::FindSample(
    const std::string& name) const {
  for (const TableSample& ts : per_table_)
    if (ts.name == name) return &ts;
  return nullptr;
}

const JoinSamplingEstimator::JoinedDimension*
JoinSamplingEstimator::FindDimension(const std::string& name) const {
  for (const JoinedDimension& jd : joined_)
    if (jd.name == name) return &jd;
  return nullptr;
}

double JoinSamplingEstimator::SingleTableSelectivity(
    const TableSlice& slice) const {
  const TableSample* ts = FindSample(slice.table);
  ARECEL_CHECK_MSG(ts != nullptr, slice.table.c_str());
  if (ts->sample_rows == 0) return 0.0;
  size_t matches = 0;
  for (size_t r = 0; r < ts->sample_rows; ++r) {
    if (SlicePredicatesHold(slice.predicates, ts->columns, r)) ++matches;
  }
  return static_cast<double>(matches) / static_cast<double>(ts->sample_rows);
}

double JoinSamplingEstimator::EstimateJoinSelectivity(
    const JoinQuery& query) const {
  ARECEL_CHECK_MSG(!per_table_.empty(), "TrainJoin() must run first");
  if (!query.IsSatisfiable()) return 0.0;
  ARECEL_CHECK_MSG(!query.tables.empty(), "join query has no tables");

  if (query.tables.size() == 1) {
    return std::clamp(SingleTableSelectivity(query.tables[0]), 0.0, 1.0);
  }

  // Multi-table: walk the correlated sample. The query must be anchored on
  // the schema's star center (every generated workload is).
  const TableSlice* center_slice = query.FindTable(center_);
  ARECEL_CHECK_MSG(center_slice != nullptr,
                   "join query does not include the star center");
  if (center_sample_rows_ == 0) return 0.0;

  struct DimProbe {
    const JoinedDimension* dim;
    const std::vector<Predicate>* predicates;
  };
  std::vector<DimProbe> dims;
  double denom = 1.0;
  for (const TableSlice& slice : query.tables) {
    if (slice.table == center_) continue;
    const JoinedDimension* jd = FindDimension(slice.table);
    ARECEL_CHECK_MSG(jd != nullptr, slice.table.c_str());
    if (jd->table_rows == 0) return 0.0;
    dims.push_back({jd, &slice.predicates});
    denom *= static_cast<double>(jd->table_rows);
  }

  double matched = 0.0;
  for (size_t r = 0; r < center_sample_rows_; ++r) {
    if (!SlicePredicatesHold(center_slice->predicates, center_columns_, r)) {
      continue;
    }
    double weight = 1.0;
    for (const DimProbe& probe : dims) {
      if (probe.dim->weight[r] == 0.0 ||
          !SlicePredicatesHold(*probe.predicates, probe.dim->columns, r)) {
        weight = 0.0;
        break;
      }
      weight *= probe.dim->weight[r];
    }
    matched += weight;
  }
  const double fraction =
      matched / static_cast<double>(center_sample_rows_);
  return std::clamp(fraction / denom, 0.0, 1.0);
}

double JoinSamplingEstimator::EstimateSelectivity(const Query& query) const {
  ARECEL_CHECK_MSG(!single_table_.empty(), "Train() must run first");
  return EstimateJoinSelectivity(SingleTableJoinQuery(single_table_, query));
}

size_t JoinSamplingEstimator::SizeBytes() const {
  size_t total = 0;
  for (const TableSample& ts : per_table_) {
    total += ts.columns.size() * ts.sample_rows * sizeof(double);
  }
  for (const JoinedDimension& jd : joined_) {
    total += (jd.columns.size() + 1) * center_sample_rows_ * sizeof(double);
  }
  return total;
}

std::unique_ptr<CardinalityEstimator> MakeJoinSamplingEstimator() {
  return std::make_unique<JoinSamplingEstimator>();
}

}  // namespace arecel
