#include "estimators/join/independence.h"

#include <algorithm>

#include "estimators/join/join_support.h"
#include "util/check.h"

namespace arecel {

JoinIndependenceEstimator::JoinIndependenceEstimator(
    ColumnStats::Options options)
    : options_(options) {}

void JoinIndependenceEstimator::TrainJoin(const Schema& schema,
                                          const JoinTrainContext& context) {
  (void)context;  // data-driven: statistics only.
  stats_.clear();
  stats_.reserve(schema.num_tables());
  for (const Table& table : schema.tables()) {
    TableStats ts;
    ts.name = table.name();
    ts.rows = table.num_rows();
    ts.columns.resize(table.num_cols());
    for (size_t c = 0; c < table.num_cols(); ++c) {
      ts.columns[c].Build(table.column(c).values, options_);
    }
    stats_.push_back(std::move(ts));
  }
}

void JoinIndependenceEstimator::Train(const Table& table,
                                      const TrainContext& context) {
  (void)context;
  single_table_ = WrappedTableName(table);
  TrainJoin(WrapSingleTable(table), {});
}

const JoinIndependenceEstimator::TableStats* JoinIndependenceEstimator::Find(
    const std::string& name) const {
  for (const TableStats& ts : stats_)
    if (ts.name == name) return &ts;
  return nullptr;
}

double JoinIndependenceEstimator::EstimateJoinSelectivity(
    const JoinQuery& query) const {
  ARECEL_CHECK_MSG(!stats_.empty(), "TrainJoin() must run first");
  if (!query.IsSatisfiable()) return 0.0;

  double sel = 1.0;
  for (const TableSlice& slice : query.tables) {
    const TableStats* ts = Find(slice.table);
    ARECEL_CHECK_MSG(ts != nullptr, slice.table.c_str());
    if (ts->rows == 0) return 0.0;
    for (const Predicate& p : slice.predicates) {
      ARECEL_CHECK(p.column >= 0 &&
                   static_cast<size_t>(p.column) < ts->columns.size());
      const ColumnStats& col = ts->columns[static_cast<size_t>(p.column)];
      sel *= p.is_equality() ? col.EstimateEquality(p.lo)
                             : col.EstimateRange(p.lo, p.hi);
    }
  }

  for (const JoinEdge& e : query.joins) {
    const TableStats* left = Find(e.left_table);
    const TableStats* right = Find(e.right_table);
    ARECEL_CHECK_MSG(left != nullptr, e.left_table.c_str());
    ARECEL_CHECK_MSG(right != nullptr, e.right_table.c_str());
    ARECEL_CHECK(e.left_column >= 0 && static_cast<size_t>(e.left_column) <
                                           left->columns.size());
    ARECEL_CHECK(e.right_column >= 0 && static_cast<size_t>(e.right_column) <
                                            right->columns.size());
    const size_t distinct = std::max(
        left->columns[static_cast<size_t>(e.left_column)].distinct_count(),
        right->columns[static_cast<size_t>(e.right_column)].distinct_count());
    if (distinct == 0) return 0.0;
    sel /= static_cast<double>(distinct);
  }
  return std::clamp(sel, 0.0, 1.0);
}

double JoinIndependenceEstimator::EstimateSelectivity(
    const Query& query) const {
  ARECEL_CHECK_MSG(!single_table_.empty(), "Train() must run first");
  return EstimateJoinSelectivity(SingleTableJoinQuery(single_table_, query));
}

size_t JoinIndependenceEstimator::SizeBytes() const {
  size_t total = 0;
  for (const TableStats& ts : stats_) {
    for (const ColumnStats& col : ts.columns) total += col.SizeBytes();
  }
  return total;
}

std::unique_ptr<CardinalityEstimator> MakeJoinIndependenceEstimator() {
  return std::make_unique<JoinIndependenceEstimator>();
}

}  // namespace arecel
