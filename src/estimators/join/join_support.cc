#include "estimators/join/join_support.h"

#include "util/check.h"

namespace arecel {

std::string WrappedTableName(const Table& table) {
  return table.name().empty() ? "t" : table.name();
}

Schema WrapSingleTable(const Table& table) {
  Schema schema;
  if (!table.name().empty()) {
    schema.AddTable(table);
    return schema;
  }
  Table named(WrappedTableName(table));
  for (const Column& col : table.columns()) {
    named.AddColumn(col.name, col.values, col.categorical);
  }
  named.Finalize();
  schema.AddTable(std::move(named));
  return schema;
}

JoinWorkload WrapSingleTableWorkload(const std::string& table,
                                     const Workload& workload) {
  JoinWorkload out;
  out.queries.reserve(workload.size());
  for (const Query& q : workload.queries) {
    out.queries.push_back(SingleTableJoinQuery(table, q));
  }
  out.selectivities = workload.selectivities;
  return out;
}

std::string StarCenterTable(const Schema& schema) {
  ARECEL_CHECK(schema.num_tables() > 0);
  if (schema.foreign_keys().empty()) {
    ARECEL_CHECK_MSG(schema.num_tables() == 1,
                     "multi-table schema without FK edges has no star center");
    return schema.tables()[0].name();
  }
  const auto& fks = schema.foreign_keys();
  for (const std::string& candidate : {fks[0].table, fks[0].ref_table}) {
    bool on_all = true;
    for (const ForeignKey& fk : fks) {
      if (fk.table != candidate && fk.ref_table != candidate) {
        on_all = false;
        break;
      }
    }
    if (on_all) return candidate;
  }
  ARECEL_CHECK_MSG(false, "schema join graph is not a star");
  return {};
}

}  // namespace arecel
