#ifndef ARECEL_ESTIMATORS_JOIN_JOIN_SAMPLING_H_
#define ARECEL_ESTIMATORS_JOIN_JOIN_SAMPLING_H_

#include <memory>
#include <string>
#include <vector>

#include "core/estimator.h"

namespace arecel {

// Join-aware correlated sampling ("sampling-join").
//
// At TrainJoin time the estimator draws a uniform sample of the star
// center's rows and *materializes the join* for each sampled row: every FK
// edge is followed into its dimension (key -> row hash lookup), producing a
// row-aligned joined sample that preserves exactly the cross-table
// correlations independence baselines destroy. A join query is then
// answered by the fraction of joined-sample rows satisfying every
// participating table's predicates, divided by the row counts of the
// participating dimensions to land in the Cartesian-product convention:
//   sel ~= (sum of matching sample weights / sample size)
//          / prod_{dims in query} |dim|.
// Dangling FKs get weight 0; duplicate build keys are folded into the
// weight via key multiplicity (exact under PK-FK integrity, where every
// multiplicity is 1). Per-table uniform samples additionally serve
// single-table queries, including the plain CardinalityEstimator contract.
class JoinSamplingEstimator : public CardinalityEstimator {
 public:
  explicit JoinSamplingEstimator(size_t max_sample_rows = 10000);

  std::string Name() const override { return "sampling-join"; }
  void Train(const Table& table, const TrainContext& context) override;
  double EstimateSelectivity(const Query& query) const override;
  size_t SizeBytes() const override;

  bool SupportsJoins() const override { return true; }
  void TrainJoin(const Schema& schema,
                 const JoinTrainContext& context) override;
  double EstimateJoinSelectivity(const JoinQuery& query) const override;

 private:
  // Uniform per-table sample, row-major by column.
  struct TableSample {
    std::string name;
    size_t table_rows = 0;
    size_t sample_rows = 0;
    std::vector<std::vector<double>> columns;  // [col][sample row].
  };
  // One joined dimension of the correlated sample, aligned with the center
  // sample rows.
  struct JoinedDimension {
    std::string name;
    size_t table_rows = 0;
    std::vector<std::vector<double>> columns;  // [col][center sample row].
    std::vector<double> weight;  // key multiplicity; 0 = dangling FK.
  };

  const TableSample* FindSample(const std::string& name) const;
  const JoinedDimension* FindDimension(const std::string& name) const;
  double SingleTableSelectivity(const TableSlice& slice) const;

  size_t max_sample_rows_;
  std::string center_;
  size_t center_sample_rows_ = 0;
  std::vector<std::vector<double>> center_columns_;  // [col][sample row].
  std::vector<JoinedDimension> joined_;
  std::vector<TableSample> per_table_;
  std::string single_table_;
};

std::unique_ptr<CardinalityEstimator> MakeJoinSamplingEstimator();

}  // namespace arecel

#endif  // ARECEL_ESTIMATORS_JOIN_JOIN_SAMPLING_H_
