#include "estimators/join/mscn_join.h"

#include <algorithm>
#include <cmath>

#include "estimators/join/join_support.h"
#include "join/join_executor.h"
#include "ml/loss.h"
#include "util/check.h"
#include "util/random.h"

namespace arecel {

namespace {
// Same exponent clip as the single-table MSCN: q-error in log space
// explodes exponentially, so a badly initialized model must not produce
// inf gradients.
constexpr double kMaxLogDiff = 8.0;
}  // namespace

const MscnJoinEstimator::TableInfo* MscnJoinEstimator::FindInfo(
    const std::string& name) const {
  for (const TableInfo& info : tables_)
    if (info.name == name) return &info;
  return nullptr;
}

int MscnJoinEstimator::TableInfoIndex(const std::string& name) const {
  for (size_t i = 0; i < tables_.size(); ++i)
    if (tables_[i].name == name) return static_cast<int>(i);
  return -1;
}

int MscnJoinEstimator::EdgeIndexOf(const JoinEdge& edge) const {
  for (size_t i = 0; i < edges_.size(); ++i) {
    const ForeignKey& fk = edges_[i];
    const bool forward = fk.table == edge.left_table &&
                         fk.column == edge.left_column &&
                         fk.ref_table == edge.right_table &&
                         fk.ref_column == edge.right_column;
    const bool reverse = fk.table == edge.right_table &&
                         fk.column == edge.right_column &&
                         fk.ref_table == edge.left_table &&
                         fk.ref_column == edge.left_column;
    if (forward || reverse) return static_cast<int>(i);
  }
  return -1;
}

Matrix MscnJoinEstimator::TableFeatures(const JoinQuery& query) const {
  // Row layout: [table one-hot | per-table sample bitmap].
  const size_t dim = tables_.size() + options_.sample_size;
  Matrix features(query.tables.size(), dim);
  for (size_t t = 0; t < query.tables.size(); ++t) {
    const TableSlice& slice = query.tables[t];
    const int idx = TableInfoIndex(slice.table);
    ARECEL_CHECK_MSG(idx >= 0, slice.table.c_str());
    const TableInfo& info = tables_[static_cast<size_t>(idx)];
    float* row = features.Row(t);
    row[idx] = 1.0f;
    for (size_t r = 0; r < info.sample_rows && r < options_.sample_size;
         ++r) {
      bool match = true;
      for (const Predicate& p : slice.predicates) {
        const double v = info.sample[static_cast<size_t>(p.column)][r];
        if (v < p.lo || v > p.hi) {
          match = false;
          break;
        }
      }
      row[tables_.size() + r] = match ? 1.0f : 0.0f;
    }
  }
  return features;
}

Matrix MscnJoinEstimator::JoinFeatures(const JoinQuery& query) const {
  const size_t dim = std::max<size_t>(1, edges_.size());
  if (query.joins.empty()) {
    // Single-table query: one zero row keeps the pooling well-defined.
    return Matrix(1, dim);
  }
  Matrix features(query.joins.size(), dim);
  for (size_t j = 0; j < query.joins.size(); ++j) {
    const int e = EdgeIndexOf(query.joins[j]);
    ARECEL_CHECK_MSG(e >= 0, "join edge not in the trained schema");
    features.Row(j)[e] = 1.0f;
  }
  return features;
}

Matrix MscnJoinEstimator::PredicateFeatures(const JoinQuery& query) const {
  // Row layout per atom:
  // [(table, column) one-hot | is_eq, is_ge, is_le | normalized literal].
  const size_t dim = total_cols_ + 4;
  std::vector<std::vector<float>> atoms;
  for (const TableSlice& slice : query.tables) {
    const TableInfo* info = FindInfo(slice.table);
    ARECEL_CHECK_MSG(info != nullptr, slice.table.c_str());
    for (const Predicate& p : slice.predicates) {
      const size_t c = static_cast<size_t>(p.column);
      ARECEL_CHECK(c < info->col_min.size());
      const size_t slot = info->col_offset + c;
      const double span =
          std::max(info->col_max[c] - info->col_min[c], 1e-12);
      auto normalize = [&](double v) {
        return static_cast<float>(
            std::clamp((v - info->col_min[c]) / span, 0.0, 1.0));
      };
      if (p.is_equality()) {
        std::vector<float> atom(dim, 0.0f);
        atom[slot] = 1.0f;
        atom[total_cols_] = 1.0f;
        atom[total_cols_ + 3] = normalize(p.lo);
        atoms.push_back(std::move(atom));
        continue;
      }
      // Bounds at or beyond the column's trained domain are vacuous —
      // dropping their atoms makes a full-domain conjunct featurize
      // identically to its absence, so the full-domain-noop invariant
      // holds by construction (the sample bitmap is likewise unmoved).
      if (!std::isinf(p.lo) && p.lo > info->col_min[c]) {
        std::vector<float> atom(dim, 0.0f);
        atom[slot] = 1.0f;
        atom[total_cols_ + 1] = 1.0f;  // >= lo.
        atom[total_cols_ + 3] = normalize(p.lo);
        atoms.push_back(std::move(atom));
      }
      if (!std::isinf(p.hi) && p.hi < info->col_max[c]) {
        std::vector<float> atom(dim, 0.0f);
        atom[slot] = 1.0f;
        atom[total_cols_ + 2] = 1.0f;  // <= hi.
        atom[total_cols_ + 3] = normalize(p.hi);
        atoms.push_back(std::move(atom));
      }
    }
  }
  if (atoms.empty()) atoms.emplace_back(dim, 0.0f);
  Matrix features(atoms.size(), dim);
  for (size_t i = 0; i < atoms.size(); ++i)
    std::copy(atoms[i].begin(), atoms[i].end(), features.Row(i));
  return features;
}

float MscnJoinEstimator::Forward(const Matrix& table_rows,
                                 const Matrix& join_rows,
                                 const Matrix& pred_rows, bool train) {
  const size_t h = options_.hidden_units;
  auto pool = [h](Mlp* mlp, const Matrix& in, bool train_mode,
                  std::vector<float>* out) {
    Matrix embed;
    if (train_mode) {
      mlp->ForwardTrain(in, &embed);
    } else {
      mlp->Forward(in, &embed);
    }
    out->assign(h, 0.0f);
    for (size_t r = 0; r < embed.rows(); ++r) {
      const float* row = embed.Row(r);
      for (size_t j = 0; j < h; ++j) (*out)[j] += row[j];
    }
    const float inv = 1.0f / static_cast<float>(embed.rows());
    for (float& v : *out) v *= inv;
  };

  std::vector<float> table_pool, join_pool, pred_pool;
  pool(table_mlp_.get(), table_rows, train, &table_pool);
  pool(join_mlp_.get(), join_rows, train, &join_pool);
  pool(pred_mlp_.get(), pred_rows, train, &pred_pool);
  if (train) {
    cached_table_rows_ = table_rows.rows();
    cached_join_rows_ = join_rows.rows();
    cached_pred_rows_ = pred_rows.rows();
  }

  Matrix concat(1, 3 * h);
  std::copy(table_pool.begin(), table_pool.end(), concat.Row(0));
  std::copy(join_pool.begin(), join_pool.end(), concat.Row(0) + h);
  std::copy(pred_pool.begin(), pred_pool.end(), concat.Row(0) + 2 * h);
  Matrix out;
  if (train) {
    out_mlp_->ForwardTrain(concat, &out);
  } else {
    out_mlp_->Forward(concat, &out);
  }
  return out.At(0, 0);
}

void MscnJoinEstimator::TrainJoin(const Schema& schema,
                                  const JoinTrainContext& context) {
  ARECEL_CHECK_MSG(context.training_workload != nullptr &&
                       context.training_workload->size() > 0,
                   "mscn-join is query-driven and needs a labelled workload");
  // Freeze per-table metadata and materialized samples.
  tables_.clear();
  edges_ = schema.foreign_keys();
  total_cols_ = 0;
  for (const Table& table : schema.tables()) {
    TableInfo info;
    info.name = table.name();
    info.rows = table.num_rows();
    info.col_offset = total_cols_;
    info.col_min.resize(table.num_cols());
    info.col_max.resize(table.num_cols());
    for (size_t c = 0; c < table.num_cols(); ++c) {
      info.col_min[c] = table.num_rows() > 0 ? table.column(c).min() : 0.0;
      info.col_max[c] = table.num_rows() > 0 ? table.column(c).max() : 0.0;
    }
    info.sample_rows =
        std::min(table.num_rows(), options_.sample_size);
    const Table sample =
        table.num_rows() > 0
            ? table.SampleRows(info.sample_rows, context.seed + 99)
            : Table();
    info.sample.assign(table.num_cols(),
                       std::vector<double>(info.sample_rows));
    for (size_t c = 0; c < sample.num_cols(); ++c) {
      info.sample[c] = sample.column(c).values;
    }
    total_cols_ += table.num_cols();
    tables_.push_back(std::move(info));
  }
  FitWorkload(*context.training_workload, options_.epochs, context.seed,
              /*reuse_model=*/false);
}

void MscnJoinEstimator::FitWorkload(const JoinWorkload& workload, int epochs,
                                    uint64_t seed, bool reuse_model) {
  const size_t h = options_.hidden_units;
  const size_t table_dim = tables_.size() + options_.sample_size;
  const size_t join_dim = std::max<size_t>(1, edges_.size());
  const size_t pred_dim = total_cols_ + 4;
  if (!reuse_model || out_mlp_ == nullptr) {
    Rng init(seed);
    table_mlp_ = std::make_unique<Mlp>(std::vector<size_t>{table_dim, h, h},
                                       init);
    join_mlp_ =
        std::make_unique<Mlp>(std::vector<size_t>{join_dim, h, h}, init);
    pred_mlp_ =
        std::make_unique<Mlp>(std::vector<size_t>{pred_dim, h, h}, init);
    out_mlp_ =
        std::make_unique<Mlp>(std::vector<size_t>{3 * h, h, 1}, init);
  }

  const size_t n = workload.size();
  // Zero-result queries need a finite log label. Half a Cartesian-product
  // tuple (0.5 / prod rows) is the principled floor but sits 20+ log units
  // below every realistic selectivity on a star schema, so each zero query
  // would saturate the kMaxLogDiff clip and drag the whole model down.
  // Winsorize instead: floor at half the smallest *positive* training
  // selectivity, which keeps zero labels "just below everything observed"
  // while bounding the label range the optimizer must span.
  double min_positive = 1.0;
  bool any_positive = false;
  for (const double sel : workload.selectivities) {
    if (sel > 0.0) {
      min_positive = std::min(min_positive, sel);
      any_positive = true;
    }
  }
  std::vector<Matrix> table_rows(n), join_rows(n), pred_rows(n);
  std::vector<double> labels(n);
  for (size_t i = 0; i < n; ++i) {
    const JoinQuery& q = workload.queries[i];
    table_rows[i] = TableFeatures(q);
    join_rows[i] = JoinFeatures(q);
    pred_rows[i] = PredicateFeatures(q);
    double denom = 1.0;
    for (const TableSlice& slice : q.tables) {
      const TableInfo* info = FindInfo(slice.table);
      denom *= static_cast<double>(std::max<size_t>(1, info->rows));
    }
    const double floor =
        std::max(0.5 / denom, any_positive ? 0.5 * min_positive : 0.0);
    labels[i] = std::log(std::max(workload.selectivities[i], floor));
  }

  Rng rng(seed + 1);
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;

  for (int epoch = 0; epoch < epochs; ++epoch) {
    // Stepped decay: full rate for the first half, then 1/2 and 1/4 — the
    // coarse-to-fine schedule that lets the long tail of epochs sharpen
    // the fit instead of bouncing around the minimum.
    const float lr = options_.learning_rate *
                     (epoch >= 3 * epochs / 4 ? 0.25f
                      : epoch >= epochs / 2  ? 0.5f
                                             : 1.0f);
    rng.Shuffle(order);
    double epoch_loss = 0.0;
    for (size_t start = 0; start < n; start += options_.batch_size) {
      const size_t end = std::min(n, start + options_.batch_size);
      for (size_t i = start; i < end; ++i) {
        const size_t q = order[i];
        const float z =
            Forward(table_rows[q], join_rows[q], pred_rows[q], /*train=*/true);
        const LossValueGrad loss = QErrorLoss(z, labels[q], kMaxLogDiff);
        epoch_loss += loss.loss;
        const float dz = static_cast<float>(
            loss.dloss_dz / static_cast<double>(end - start));
        Matrix out_grad(1, 1);
        out_grad.At(0, 0) = dz;
        Matrix concat_grad;
        out_mlp_->Backward(out_grad, &concat_grad);
        // Fan the three concat segments back through their average pools.
        auto fan = [&](Mlp* mlp, size_t offset, size_t rows) {
          Matrix grad(rows, h);
          const float inv = 1.0f / static_cast<float>(rows);
          for (size_t r = 0; r < rows; ++r)
            for (size_t j = 0; j < h; ++j)
              grad.At(r, j) = concat_grad.At(0, offset + j) * inv;
          mlp->Backward(grad);
        };
        fan(table_mlp_.get(), 0, cached_table_rows_);
        fan(join_mlp_.get(), h, cached_join_rows_);
        fan(pred_mlp_.get(), 2 * h, cached_pred_rows_);
      }
      table_mlp_->AdamStep(lr);
      join_mlp_->AdamStep(lr);
      pred_mlp_->AdamStep(lr);
      out_mlp_->AdamStep(lr);
    }
    final_loss_ = epoch_loss / static_cast<double>(n);
  }
}

void MscnJoinEstimator::Train(const Table& table, const TrainContext& context) {
  ARECEL_CHECK_MSG(context.training_workload != nullptr &&
                       context.training_workload->size() > 0,
                   "mscn-join is query-driven and needs a labelled workload");
  single_table_ = WrappedTableName(table);
  const Schema schema = WrapSingleTable(table);
  JoinTrainContext join_context;
  join_context.seed = context.seed;
  join_context.size_budget_fraction = context.size_budget_fraction;
  join_context.cancellation = context.cancellation;
  const JoinWorkload workload =
      WrapSingleTableWorkload(single_table_, *context.training_workload);
  join_context.training_workload = &workload;
  TrainJoin(schema, join_context);
}

double MscnJoinEstimator::EstimateJoinSelectivity(
    const JoinQuery& query) const {
  ARECEL_CHECK_MSG(out_mlp_ != nullptr, "TrainJoin() must run first");
  auto* self = const_cast<MscnJoinEstimator*>(this);
  const float z = self->Forward(TableFeatures(query), JoinFeatures(query),
                                PredicateFeatures(query), /*train=*/false);
  return std::clamp(std::exp(static_cast<double>(z)), 0.0, 1.0);
}

double MscnJoinEstimator::EstimateSelectivity(const Query& query) const {
  ARECEL_CHECK_MSG(!single_table_.empty(), "Train() must run first");
  return EstimateJoinSelectivity(SingleTableJoinQuery(single_table_, query));
}

void MscnJoinEstimator::PackForServing() {
  for (Mlp* mlp :
       {table_mlp_.get(), join_mlp_.get(), pred_mlp_.get(), out_mlp_.get()}) {
    if (mlp != nullptr) mlp->PackForInference();
  }
}

size_t MscnJoinEstimator::SizeBytes() const {
  size_t params = 0;
  if (out_mlp_ != nullptr) {
    params = table_mlp_->ParamCount() + join_mlp_->ParamCount() +
             pred_mlp_->ParamCount() + out_mlp_->ParamCount();
  }
  size_t samples = 0;
  for (const TableInfo& info : tables_) {
    samples += info.sample.size() * info.sample_rows * sizeof(double);
  }
  return params * sizeof(float) + samples;
}

std::unique_ptr<CardinalityEstimator> MakeMscnJoinEstimator() {
  return std::make_unique<MscnJoinEstimator>();
}

}  // namespace arecel
