#ifndef ARECEL_ESTIMATORS_JOIN_MSCN_JOIN_H_
#define ARECEL_ESTIMATORS_JOIN_MSCN_JOIN_H_

#include <memory>
#include <string>
#include <vector>

#include "core/estimator.h"
#include "ml/matrix.h"
#include "ml/nn.h"

namespace arecel {

// Full multi-set convolutional network ("mscn-join"): MSCN (Kipf et al.,
// CIDR'19) with all three input modules, extending the single-table
// restriction of estimators/learned/mscn.cc to star join queries.
//
// Per query, three variable-size sets are featurized and embedded by
// shared two-layer MLPs with average pooling:
//  * table set: one row per participating table —
//    [table one-hot | bitmap of that table's materialized sample under the
//    query's predicates on that table];
//  * join set: one row per join edge — one-hot over the schema's FK edges
//    (a single zero row for single-table queries);
//  * predicate set: one row per predicate atom —
//    [(table, column) one-hot | op one-hot (=, >=, <=) | normalized
//    literal], intervals decomposed into >= and <= atoms.
// The three pooled embeddings are concatenated into the output MLP, which
// produces log Cartesian-product selectivity; training minimizes the mean
// q-error in log space, exactly like the single-table MSCN.
class MscnJoinEstimator : public CardinalityEstimator {
 public:
  struct Options {
    size_t hidden_units = 64;
    size_t sample_size = 128;  // materialized sample rows per table.
    int epochs = 160;
    size_t batch_size = 64;
    float learning_rate = 1e-3f;  // stepped 1x/0.5x/0.25x over the epochs.
  };

  MscnJoinEstimator() : MscnJoinEstimator(Options()) {}
  explicit MscnJoinEstimator(Options options) : options_(options) {}

  std::string Name() const override { return "mscn-join"; }
  bool IsQueryDriven() const override { return true; }
  void Train(const Table& table, const TrainContext& context) override;
  double EstimateSelectivity(const Query& query) const override;
  size_t SizeBytes() const override;
  void PackForServing() override;

  bool SupportsJoins() const override { return true; }
  void TrainJoin(const Schema& schema,
                 const JoinTrainContext& context) override;
  double EstimateJoinSelectivity(const JoinQuery& query) const override;

  double final_loss() const { return final_loss_; }

 private:
  // Frozen per-table metadata captured at TrainJoin time.
  struct TableInfo {
    std::string name;
    size_t rows = 0;
    size_t col_offset = 0;  // into the global (table, column) one-hot.
    std::vector<double> col_min, col_max;
    std::vector<std::vector<double>> sample;  // [col][sample row].
    size_t sample_rows = 0;
  };
  const TableInfo* FindInfo(const std::string& name) const;
  int TableInfoIndex(const std::string& name) const;
  int EdgeIndexOf(const JoinEdge& edge) const;

  Matrix TableFeatures(const JoinQuery& query) const;
  Matrix JoinFeatures(const JoinQuery& query) const;
  Matrix PredicateFeatures(const JoinQuery& query) const;
  float Forward(const Matrix& table_rows, const Matrix& join_rows,
                const Matrix& pred_rows, bool train);
  void FitWorkload(const JoinWorkload& workload, int epochs, uint64_t seed,
                   bool reuse_model);

  Options options_;
  std::vector<TableInfo> tables_;
  std::vector<ForeignKey> edges_;
  size_t total_cols_ = 0;
  std::string single_table_;
  std::unique_ptr<Mlp> table_mlp_, join_mlp_, pred_mlp_, out_mlp_;
  double final_loss_ = 0.0;

  // Row counts of the last train-mode Forward, for pooled-gradient fan-out.
  size_t cached_table_rows_ = 0;
  size_t cached_join_rows_ = 0;
  size_t cached_pred_rows_ = 0;
};

std::unique_ptr<CardinalityEstimator> MakeMscnJoinEstimator();

}  // namespace arecel

#endif  // ARECEL_ESTIMATORS_JOIN_MSCN_JOIN_H_
