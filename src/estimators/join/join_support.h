#ifndef ARECEL_ESTIMATORS_JOIN_JOIN_SUPPORT_H_
#define ARECEL_ESTIMATORS_JOIN_JOIN_SUPPORT_H_

#include <string>

#include "data/schema.h"
#include "workload/generator.h"
#include "workload/join_generator.h"

namespace arecel {

// Bridge for join-capable estimators serving the single-table contract:
// Train(table, ...) wraps the table into a degenerate one-table schema and
// routes through TrainJoin; EstimateSelectivity routes through
// EstimateJoinSelectivity(SingleTableJoinQuery(...)). That keeps every
// registry-wide single-table sweep (conformance, property, golden) valid
// for the join estimators without a second code path.

// Name the wrapped table is registered under ("t" when the table is
// unnamed — Schema requires non-empty names).
std::string WrappedTableName(const Table& table);

// Copies `table` into a one-table schema under WrappedTableName(table).
Schema WrapSingleTable(const Table& table);

// Lifts a labelled single-table workload into a JoinWorkload over `table`
// (single-table selectivity and Cartesian-product selectivity coincide).
JoinWorkload WrapSingleTableWorkload(const std::string& table,
                                     const Workload& workload);

// The star center of `schema`: the table sharing an edge with every other
// table (the only table of a one-table schema). Aborts on non-star graphs.
std::string StarCenterTable(const Schema& schema);

}  // namespace arecel

#endif  // ARECEL_ESTIMATORS_JOIN_JOIN_SUPPORT_H_
