#ifndef ARECEL_ESTIMATORS_EXTENSIONS_HYBRID_H_
#define ARECEL_ESTIMATORS_EXTENSIONS_HYBRID_H_

#include <memory>
#include <string>

#include "core/estimator.h"

namespace arecel {

// HybridEstimator — the paper's §7.1 ensemble direction, "apply multiple
// approaches in a hierarchical fashion": route simple queries (few
// predicates) to a cheap estimator and complex ones to the heavy, accurate
// model; and while the heavy model is mid-update, fall back to the cheap
// one (which refreshes in milliseconds), so a fast-updating temporary
// replacement always serves the stream.
class HybridEstimator : public CardinalityEstimator {
 public:
  struct Options {
    // Queries with <= this many predicates go to the light estimator.
    int light_predicate_limit = 1;
  };

  HybridEstimator(std::unique_ptr<CardinalityEstimator> light,
                  std::unique_ptr<CardinalityEstimator> heavy)
      : light_(std::move(light)), heavy_(std::move(heavy)) {}
  HybridEstimator(std::unique_ptr<CardinalityEstimator> light,
                  std::unique_ptr<CardinalityEstimator> heavy,
                  Options options)
      : options_(options), light_(std::move(light)), heavy_(std::move(heavy)) {}

  std::string Name() const override {
    return "hybrid(" + light_->Name() + "+" + heavy_->Name() + ")";
  }
  bool IsQueryDriven() const override {
    return light_->IsQueryDriven() || heavy_->IsQueryDriven();
  }
  bool ThreadSafeEstimates() const override {
    return light_->ThreadSafeEstimates() && heavy_->ThreadSafeEstimates();
  }

  void Train(const Table& table, const TrainContext& context) override {
    light_->Train(table, context);
    heavy_->Train(table, context);
    heavy_ready_ = true;
  }

  // Two-stage update: the light estimator refreshes first and serves alone
  // (heavy_ready_ = false) until the heavy model finishes.
  void Update(const Table& table, const UpdateContext& context) override {
    light_->Update(table, context);
    heavy_ready_ = false;
    heavy_->Update(table, context);
    heavy_ready_ = true;
  }

  // Marks the heavy model stale (e.g. data changed but its update has not
  // run yet); estimates fall back to the light model.
  void MarkHeavyStale() { heavy_ready_ = false; }
  bool heavy_ready() const { return heavy_ready_; }

  double EstimateSelectivity(const Query& query) const override {
    if (!heavy_ready_ ||
        static_cast<int>(query.predicates.size()) <=
            options_.light_predicate_limit) {
      return light_->EstimateSelectivity(query);
    }
    return heavy_->EstimateSelectivity(query);
  }

  size_t SizeBytes() const override {
    return light_->SizeBytes() + heavy_->SizeBytes();
  }

 private:
  Options options_;
  std::unique_ptr<CardinalityEstimator> light_;
  std::unique_ptr<CardinalityEstimator> heavy_;
  bool heavy_ready_ = false;
};

}  // namespace arecel

#endif  // ARECEL_ESTIMATORS_EXTENSIONS_HYBRID_H_
