#ifndef ARECEL_ESTIMATORS_EXTENSIONS_FEEDBACK_H_
#define ARECEL_ESTIMATORS_EXTENSIONS_FEEDBACK_H_

#include <memory>
#include <string>
#include <vector>

#include "core/estimator.h"
#include "feedback/online_model.h"

namespace arecel {

// Adaptive estimators over the src/feedback/ online store (DESIGN.md §11).
//
// Both are FeedbackSinks: the serving layer's truth worker (or a test
// driving the loop synchronously) calls ObserveTruth with executed-query
// selectivities, and subsequent estimates for the same predicate subspace
// move toward the observed truth.

// `feedback-knn` — AQO's machinery as a standalone estimator. Training
// binds the schema and seeds the store with the labelled training workload
// (target = log truth selectivity); ObserveTruth keeps feeding it online.
// Queries whose subspace has been observed answer from the kNN+EMA store;
// unseen subspaces fall back to a uniform-independence prior over the
// column spans, so the estimator is total from the first query on.
class FeedbackKnnEstimator : public CardinalityEstimator,
                             public FeedbackSink {
 public:
  explicit FeedbackKnnEstimator(
      feedback::FeedbackOptions options = feedback::FeedbackOptionsFromEnv());

  std::string Name() const override { return "feedback-knn"; }
  bool IsQueryDriven() const override { return true; }
  bool ThreadSafeEstimates() const override { return true; }

  void Train(const Table& table, const TrainContext& context) override;
  void Update(const Table& table, const UpdateContext& context) override;
  double EstimateSelectivity(const Query& query) const override;
  size_t SizeBytes() const override;

  void ObserveTruth(const Query& query, double truth_selectivity) override;

  bool SerializeModel(ByteWriter* writer) const override;
  bool DeserializeModel(ByteReader* reader) override;

  // Data version the store currently learns under (bumped by Update).
  uint64_t data_version() const { return version_; }
  feedback::FeedbackModelStats FeedbackStats() const { return model_.Stats(); }

 private:
  struct ColumnPrior {
    double lo = 0.0;
    double hi = 1.0;
    size_t domain_size = 1;
  };

  double FallbackSelectivity(const Query& query) const;
  void SeedFromWorkload(const Workload& workload);

  feedback::OnlineSubspaceModel model_;
  std::vector<ColumnPrior> priors_;
  size_t rows_ = 0;
  uint64_t version_ = 0;
};

// `feedback-corrected` — the correction decorator: wraps any base estimator
// and multiplies its estimate by the learned exp(residual) for the query's
// subspace, where the residual is log(truth / base estimate) observed on
// executed queries. Estimates for never-observed subspaces pass through
// unchanged, so enabling the loop is never worse than the base on cold
// subspaces. The registry instance wraps the postgres-style baseline.
class FeedbackCorrectedEstimator : public CardinalityEstimator,
                                   public FeedbackSink {
 public:
  explicit FeedbackCorrectedEstimator(
      std::unique_ptr<CardinalityEstimator> base,
      feedback::FeedbackOptions options = feedback::FeedbackOptionsFromEnv());

  // The registry name, regardless of the wrapped base: the registry
  // contract (and model-file kind check) is Name() == MakeEstimator key.
  // base().Name() identifies the wrapped estimator when needed.
  std::string Name() const override { return "feedback-corrected"; }
  bool IsQueryDriven() const override { return base_->IsQueryDriven(); }
  bool ThreadSafeEstimates() const override {
    return base_->ThreadSafeEstimates();
  }

  void Train(const Table& table, const TrainContext& context) override;
  void Update(const Table& table, const UpdateContext& context) override;
  double EstimateSelectivity(const Query& query) const override;
  size_t SizeBytes() const override;

  void ObserveTruth(const Query& query, double truth_selectivity) override;

  bool SerializeModel(ByteWriter* writer) const override;
  bool DeserializeModel(ByteReader* reader) override;

  const CardinalityEstimator& base() const { return *base_; }
  uint64_t data_version() const { return version_; }
  feedback::FeedbackModelStats FeedbackStats() const { return model_.Stats(); }

 private:
  std::unique_ptr<CardinalityEstimator> base_;
  feedback::OnlineSubspaceModel model_;
  size_t rows_ = 0;
  uint64_t version_ = 0;
};

// Registry factory: feedback-corrected over the postgres-style baseline.
std::unique_ptr<CardinalityEstimator> MakeFeedbackCorrectedEstimator();

}  // namespace arecel

#endif  // ARECEL_ESTIMATORS_EXTENSIONS_FEEDBACK_H_
