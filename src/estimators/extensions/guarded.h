#ifndef ARECEL_ESTIMATORS_EXTENSIONS_GUARDED_H_
#define ARECEL_ESTIMATORS_EXTENSIONS_GUARDED_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/estimator.h"

namespace arecel {

// GuardedEstimator — the paper's §7.2 "handle illogical behaviours with
// simple checking mechanisms", implemented as a wrapper around any base
// estimator. It restores three of the five Table 6 rules without touching
// the underlying model:
//  * Fidelity-B: unsatisfiable predicates (lo > hi) answer exactly 0;
//  * Fidelity-A: predicates covering a column's whole domain are dropped
//    before reaching the model (a query that only had whole-domain
//    predicates answers exactly 1);
//  * Stability: estimates are memoized per normalized query, so repeated
//    identical queries always return the same value even when the base
//    model's inference is stochastic (Naru).
// Monotonicity and consistency are properties of the model's function shape
// and cannot be restored by a wrapper without changing its answers.
class GuardedEstimator : public CardinalityEstimator {
 public:
  explicit GuardedEstimator(std::unique_ptr<CardinalityEstimator> base)
      : base_(std::move(base)) {}

  std::string Name() const override { return "guarded(" + base_->Name() + ")"; }
  bool IsQueryDriven() const override { return base_->IsQueryDriven(); }
  void Train(const Table& table, const TrainContext& context) override;
  void Update(const Table& table, const UpdateContext& context) override;
  double EstimateSelectivity(const Query& query) const override;
  size_t SizeBytes() const override { return base_->SizeBytes(); }
  // The memo map below mutates without a lock, and the base may be
  // stochastic anyway.
  bool ThreadSafeEstimates() const override { return false; }

  const CardinalityEstimator& base() const { return *base_; }

 private:
  std::unique_ptr<CardinalityEstimator> base_;
  std::vector<double> col_min_, col_max_;
  // Memoized estimates keyed by the normalized predicate list.
  mutable std::map<std::vector<std::pair<int, std::pair<double, double>>>,
                   double>
      cache_;
};

}  // namespace arecel

#endif  // ARECEL_ESTIMATORS_EXTENSIONS_GUARDED_H_
