#include "estimators/extensions/feedback.h"

#include <algorithm>
#include <cmath>

#include "estimators/traditional/dbms.h"

namespace arecel {

namespace {

constexpr uint32_t kKnnMagic = 0xFEEDE571;
constexpr uint32_t kCorrectedMagic = 0xFEEDC0DE;

double LogTarget(double selectivity, size_t rows) {
  return std::log(std::max(selectivity, feedback::SelectivityFloor(rows)));
}

}  // namespace

// ---------------------------------------------------------------------------
// FeedbackKnnEstimator

FeedbackKnnEstimator::FeedbackKnnEstimator(feedback::FeedbackOptions options)
    : model_(options) {}

void FeedbackKnnEstimator::Train(const Table& table,
                                 const TrainContext& context) {
  model_.Clear();
  model_.BindSchema(table);
  rows_ = table.num_rows();
  version_ = 0;
  priors_.clear();
  priors_.reserve(table.num_cols());
  for (size_t c = 0; c < table.num_cols(); ++c) {
    const Column& column = table.column(c);
    ColumnPrior prior;
    if (!column.domain.empty()) {
      prior.lo = column.min();
      prior.hi = column.max();
      prior.domain_size = column.domain_size();
    }
    priors_.push_back(prior);
  }
  if (context.training_workload != nullptr)
    SeedFromWorkload(*context.training_workload);
}

void FeedbackKnnEstimator::Update(const Table& table,
                                  const UpdateContext& context) {
  // §5.1 append-update: bump the version first so every truth learned over
  // the pre-update data is dropped, then re-bind spans (appends can widen
  // domains) and re-seed from the refreshed workload.
  ++version_;
  model_.InvalidateOlderThan(version_);
  model_.BindSchema(table);
  rows_ = table.num_rows();
  priors_.clear();
  priors_.reserve(table.num_cols());
  for (size_t c = 0; c < table.num_cols(); ++c) {
    const Column& column = table.column(c);
    ColumnPrior prior;
    if (!column.domain.empty()) {
      prior.lo = column.min();
      prior.hi = column.max();
      prior.domain_size = column.domain_size();
    }
    priors_.push_back(prior);
  }
  if (context.update_workload != nullptr)
    SeedFromWorkload(*context.update_workload);
}

void FeedbackKnnEstimator::SeedFromWorkload(const Workload& workload) {
  const size_t n = std::min(workload.queries.size(),
                            workload.selectivities.size());
  for (size_t i = 0; i < n; ++i)
    model_.Observe(workload.queries[i],
                   LogTarget(workload.selectivities[i], rows_), version_);
}

double FeedbackKnnEstimator::FallbackSelectivity(const Query& query) const {
  // Uniform-independence prior over the bound column spans: the coldest
  // possible answer, but total, deterministic, and exact on full-domain
  // conjuncts — learned subspaces take over as truths arrive.
  double selectivity = 1.0;
  for (const Predicate& p : query.predicates) {
    if (p.column < 0 || static_cast<size_t>(p.column) >= priors_.size())
      continue;
    const ColumnPrior& prior = priors_[static_cast<size_t>(p.column)];
    double fraction;
    if (p.is_equality()) {
      fraction = 1.0 / static_cast<double>(std::max<size_t>(1,
                                                            prior.domain_size));
      if (p.lo < prior.lo || p.lo > prior.hi) fraction = 0.0;
    } else {
      const double width = prior.hi - prior.lo;
      if (width <= 0) {
        fraction = p.Matches(prior.lo) ? 1.0 : 0.0;
      } else {
        const double overlap =
            std::min(p.hi, prior.hi) - std::max(p.lo, prior.lo);
        fraction = std::clamp(overlap / width, 0.0, 1.0);
      }
    }
    selectivity *= fraction;
  }
  return std::clamp(selectivity, 0.0, 1.0);
}

double FeedbackKnnEstimator::EstimateSelectivity(const Query& query) const {
  double target = 0.0;
  if (model_.Predict(query, &target))
    return std::clamp(std::exp(target), 0.0, 1.0);
  return FallbackSelectivity(query);
}

void FeedbackKnnEstimator::ObserveTruth(const Query& query,
                                        double truth_selectivity) {
  model_.Observe(query, LogTarget(truth_selectivity, rows_), version_);
}

size_t FeedbackKnnEstimator::SizeBytes() const {
  return model_.SizeBytes() + priors_.size() * sizeof(ColumnPrior);
}

bool FeedbackKnnEstimator::SerializeModel(ByteWriter* writer) const {
  writer->U32(kKnnMagic);
  writer->U64(rows_);
  writer->U64(version_);
  writer->U64(priors_.size());
  for (const ColumnPrior& prior : priors_) {
    writer->F64(prior.lo);
    writer->F64(prior.hi);
    writer->U64(prior.domain_size);
  }
  return model_.Serialize(writer);
}

bool FeedbackKnnEstimator::DeserializeModel(ByteReader* reader) {
  uint32_t magic = 0;
  if (!reader->U32(&magic) || magic != kKnnMagic) return false;
  uint64_t rows = 0, version = 0, prior_count = 0;
  if (!reader->U64(&rows) || !reader->U64(&version) ||
      !reader->U64(&prior_count))
    return false;
  std::vector<ColumnPrior> priors(static_cast<size_t>(prior_count));
  for (ColumnPrior& prior : priors) {
    uint64_t domain_size = 0;
    if (!reader->F64(&prior.lo) || !reader->F64(&prior.hi) ||
        !reader->U64(&domain_size))
      return false;
    prior.domain_size = static_cast<size_t>(domain_size);
  }
  if (!model_.Deserialize(reader)) return false;
  rows_ = static_cast<size_t>(rows);
  version_ = version;
  priors_ = std::move(priors);
  return true;
}

// ---------------------------------------------------------------------------
// FeedbackCorrectedEstimator

FeedbackCorrectedEstimator::FeedbackCorrectedEstimator(
    std::unique_ptr<CardinalityEstimator> base,
    feedback::FeedbackOptions options)
    : base_(std::move(base)), model_(options) {}

void FeedbackCorrectedEstimator::Train(const Table& table,
                                       const TrainContext& context) {
  base_->Train(table, context);
  model_.Clear();
  model_.BindSchema(table);
  rows_ = table.num_rows();
  version_ = 0;
  // Warm start: every labelled training query is an executed truth.
  if (context.training_workload != nullptr) {
    const Workload& w = *context.training_workload;
    const size_t n = std::min(w.queries.size(), w.selectivities.size());
    for (size_t i = 0; i < n; ++i) ObserveTruth(w.queries[i],
                                                w.selectivities[i]);
  }
}

void FeedbackCorrectedEstimator::Update(const Table& table,
                                        const UpdateContext& context) {
  base_->Update(table, context);
  ++version_;
  model_.InvalidateOlderThan(version_);
  model_.BindSchema(table);
  rows_ = table.num_rows();
  if (context.update_workload != nullptr) {
    const Workload& w = *context.update_workload;
    const size_t n = std::min(w.queries.size(), w.selectivities.size());
    for (size_t i = 0; i < n; ++i) ObserveTruth(w.queries[i],
                                                w.selectivities[i]);
  }
}

double FeedbackCorrectedEstimator::EstimateSelectivity(
    const Query& query) const {
  const double base = base_->EstimateSelectivity(query);
  double residual = 0.0;
  if (!model_.Predict(query, &residual)) return base;
  const double floor = feedback::SelectivityFloor(rows_);
  return std::clamp(std::max(base, floor) * std::exp(residual), 0.0, 1.0);
}

void FeedbackCorrectedEstimator::ObserveTruth(const Query& query,
                                              double truth_selectivity) {
  const double base = base_->EstimateSelectivity(query);
  const double floor = feedback::SelectivityFloor(rows_);
  const double residual = std::log(std::max(truth_selectivity, floor) /
                                   std::max(base, floor));
  model_.Observe(query, residual, version_);
}

size_t FeedbackCorrectedEstimator::SizeBytes() const {
  return base_->SizeBytes() + model_.SizeBytes();
}

bool FeedbackCorrectedEstimator::SerializeModel(ByteWriter* writer) const {
  ByteWriter probe = ByteWriter::Counting();
  if (!base_->SerializeModel(&probe)) return false;
  writer->U32(kCorrectedMagic);
  writer->U64(rows_);
  writer->U64(version_);
  if (!base_->SerializeModel(writer)) return false;
  return model_.Serialize(writer);
}

bool FeedbackCorrectedEstimator::DeserializeModel(ByteReader* reader) {
  uint32_t magic = 0;
  if (!reader->U32(&magic) || magic != kCorrectedMagic) return false;
  uint64_t rows = 0, version = 0;
  if (!reader->U64(&rows) || !reader->U64(&version)) return false;
  if (!base_->DeserializeModel(reader)) return false;
  if (!model_.Deserialize(reader)) return false;
  rows_ = static_cast<size_t>(rows);
  version_ = version;
  return true;
}

std::unique_ptr<CardinalityEstimator> MakeFeedbackCorrectedEstimator() {
  return std::make_unique<FeedbackCorrectedEstimator>(MakePostgresEstimator());
}

}  // namespace arecel
