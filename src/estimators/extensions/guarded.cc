#include "estimators/extensions/guarded.h"

#include <algorithm>

namespace arecel {

namespace {
constexpr size_t kMaxCachedQueries = 1u << 17;
}  // namespace

void GuardedEstimator::Train(const Table& table, const TrainContext& context) {
  col_min_.resize(table.num_cols());
  col_max_.resize(table.num_cols());
  for (size_t c = 0; c < table.num_cols(); ++c) {
    col_min_[c] = table.column(c).min();
    col_max_[c] = table.column(c).max();
  }
  cache_.clear();
  base_->Train(table, context);
}

void GuardedEstimator::Update(const Table& table,
                              const UpdateContext& context) {
  cache_.clear();
  base_->Update(table, context);
}

double GuardedEstimator::EstimateSelectivity(const Query& query) const {
  // Fidelity-B: an unsatisfiable conjunct means an exactly empty result.
  if (!query.IsSatisfiable()) return 0.0;

  // Fidelity-A: drop predicates that cover the whole trained domain; they
  // cannot filter anything and only confuse the model.
  Query effective;
  for (const Predicate& p : query.predicates) {
    const size_t c = static_cast<size_t>(p.column);
    if (c < col_min_.size() && p.lo <= col_min_[c] && p.hi >= col_max_[c])
      continue;
    effective.predicates.push_back(p);
  }
  if (effective.predicates.empty()) return 1.0;

  // Stability: normalize (sort by column) and memoize.
  std::vector<std::pair<int, std::pair<double, double>>> key;
  key.reserve(effective.predicates.size());
  for (const Predicate& p : effective.predicates)
    key.push_back({p.column, {p.lo, p.hi}});
  std::sort(key.begin(), key.end());
  const auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;

  const double sel =
      std::clamp(base_->EstimateSelectivity(effective), 0.0, 1.0);
  // Bound the memo so a long-running server cannot grow it without limit;
  // a full reset keeps the stability guarantee per cache generation.
  if (cache_.size() >= kMaxCachedQueries) cache_.clear();
  cache_.emplace(std::move(key), sel);
  return sel;
}

}  // namespace arecel
