#include "core/evaluator.h"

#include "util/timer.h"

namespace arecel {

EstimatorReport EvaluateOnDataset(CardinalityEstimator& estimator,
                                  const Table& table, const Workload& train,
                                  const Workload& test, uint64_t seed) {
  EstimatorReport report;
  report.estimator = estimator.Name();
  report.dataset = table.name();

  TrainContext context;
  context.training_workload = &train;
  context.seed = seed;
  Timer train_timer;
  estimator.Train(table, context);
  report.train_seconds = train_timer.ElapsedSeconds();
  report.model_size_bytes = estimator.SizeBytes();

  // Queries issued one by one, as the paper measures inference latency.
  // A degenerate (empty) test set yields an all-zero summary rather than a
  // division by zero.
  Timer inference_timer;
  report.raw_qerrors = EvaluateQErrors(estimator, test, table.num_rows());
  report.avg_inference_ms =
      test.size() == 0
          ? 0.0
          : inference_timer.ElapsedMillis() / static_cast<double>(test.size());
  report.qerror = Summarize(report.raw_qerrors);
  return report;
}

QuantileSummary EvaluateQErrorSummary(const CardinalityEstimator& estimator,
                                      const Workload& test, size_t rows) {
  return Summarize(EvaluateQErrors(estimator, test, rows));
}

}  // namespace arecel
