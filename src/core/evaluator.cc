#include "core/evaluator.h"

#include <algorithm>
#include <cmath>

#include "util/timer.h"

namespace arecel {

double ScoreEstimate(double raw_selectivity, size_t rows,
                     double actual_cardinality, bool* invalid) {
  // Inspect the raw selectivity before any clamping: a NaN would survive
  // std::clamp (unordered comparisons keep the value) and an out-of-range
  // estimate would be silently laundered into a plausible cardinality.
  // Both are structural failures of the estimator, not workload facts, so
  // they score the sentinel and are counted for the report.
  if (!std::isfinite(raw_selectivity) || raw_selectivity < 0.0) {
    *invalid = true;
    return kInvalidQError;
  }
  *invalid = false;
  const double card =
      std::clamp(raw_selectivity * static_cast<double>(rows), 0.0,
                 static_cast<double>(rows));
  return QError(card, actual_cardinality);
}

QErrorScan ScanQErrors(const CardinalityEstimator& estimator,
                       const Workload& workload, size_t rows) {
  QErrorScan scan;
  scan.qerrors.resize(workload.size());
  for (size_t i = 0; i < workload.size(); ++i) {
    const double sel = estimator.EstimateSelectivity(workload.queries[i]);
    bool invalid = false;
    scan.qerrors[i] =
        ScoreEstimate(sel, rows, workload.Cardinality(i, rows), &invalid);
    if (invalid) ++scan.invalid_estimates;
  }
  return scan;
}

EstimatorReport EvaluateOnDataset(CardinalityEstimator& estimator,
                                  const Table& table, const Workload& train,
                                  const Workload& test, uint64_t seed) {
  EstimatorReport report;
  report.estimator = estimator.Name();
  report.dataset = table.name();
  report.served_by = report.estimator;

  TrainContext context;
  context.training_workload = &train;
  context.seed = seed;
  Timer train_timer;
  estimator.Train(table, context);
  report.train_seconds = train_timer.ElapsedSeconds();
  report.model_size_bytes = estimator.SizeBytes();

  // Queries issued one by one, as the paper measures inference latency.
  // A degenerate (empty) test set yields an all-zero summary rather than a
  // division by zero.
  Timer inference_timer;
  QErrorScan scan = ScanQErrors(estimator, test, table.num_rows());
  report.avg_inference_ms =
      test.size() == 0
          ? 0.0
          : inference_timer.ElapsedMillis() / static_cast<double>(test.size());
  report.raw_qerrors = std::move(scan.qerrors);
  report.invalid_estimates = scan.invalid_estimates;
  if (scan.invalid_estimates > 0) {
    report.failures.push_back(
        {FailureKind::kNonFiniteEstimate, "estimate", 0,
         std::to_string(scan.invalid_estimates) + "/" +
             std::to_string(test.size()) + " invalid estimates"});
  }
  report.qerror = Summarize(report.raw_qerrors);
  return report;
}

QuantileSummary EvaluateQErrorSummary(const CardinalityEstimator& estimator,
                                      const Workload& test, size_t rows) {
  return Summarize(ScanQErrors(estimator, test, rows).qerrors);
}

}  // namespace arecel
