#ifndef ARECEL_CORE_EVALUATOR_H_
#define ARECEL_CORE_EVALUATOR_H_

#include <string>
#include <vector>

#include "core/estimator.h"
#include "robustness/failure.h"
#include "util/stats.h"

namespace arecel {

// Result of training + evaluating one estimator on one dataset — the unit
// behind Table 4 (accuracy) and Figure 4 (training/inference cost).
struct EstimatorReport {
  std::string estimator;
  std::string dataset;
  QuantileSummary qerror;          // 50th/95th/99th/max.
  std::vector<double> raw_qerrors;
  double train_seconds = 0.0;
  double avg_inference_ms = 0.0;
  size_t model_size_bytes = 0;

  // Failure accounting (robustness/failure.h). `served_by` names the model
  // that actually produced the numbers: the estimator itself on the happy
  // path, the configured fallback after training failed, or empty when the
  // cell produced no numbers at all. `invalid_estimates` counts probe
  // queries whose raw selectivity was non-finite or negative — each is
  // clamped to the kInvalidQError path instead of flowing into the
  // quantiles as a spurious number.
  std::string served_by;
  size_t invalid_estimates = 0;
  std::vector<FailureRecord> failures;

  // The cell yielded numbers (possibly via fallback) with no failure: the
  // journalable state. A NaN-spewing estimator completes but is NOT ok.
  bool ok() const { return failures.empty() && !served_by.empty(); }
};

// Per-query q-errors plus the boundary failure counts: the shared scan
// beneath EvaluateOnDataset and EvaluateQErrorSummary. Non-finite or
// negative raw selectivities score kInvalidQError and are tallied instead
// of leaking into downstream statistics.
struct QErrorScan {
  std::vector<double> qerrors;
  size_t invalid_estimates = 0;
};
QErrorScan ScanQErrors(const CardinalityEstimator& estimator,
                       const Workload& workload, size_t rows);

// Scores one raw selectivity estimate against the actual cardinality on a
// `rows`-row table: the single place where boundary policy lives. A
// non-finite or negative raw selectivity sets *invalid and scores
// kInvalidQError; anything else is clamped into [0, rows] and scored with
// QError. Shared by ScanQErrors and the robustness runner's per-query
// budget path so both report identical statistics.
double ScoreEstimate(double raw_selectivity, size_t rows,
                     double actual_cardinality, bool* invalid);

// Trains `estimator` (with `train` as the labelled workload for query-driven
// methods) and evaluates q-errors over `test`. Wall-clock timings included.
// An empty `test` produces an all-zero summary and zero inference time.
EstimatorReport EvaluateOnDataset(CardinalityEstimator& estimator,
                                  const Table& table, const Workload& train,
                                  const Workload& test, uint64_t seed = 42);

// Accuracy of an already-trained estimator on `test`, as the Table 4
// quantile summary. This is the hook the conformance/golden-baseline
// harness (src/testing/) shares with EvaluateOnDataset, so both report the
// same statistic.
QuantileSummary EvaluateQErrorSummary(const CardinalityEstimator& estimator,
                                      const Workload& test, size_t rows);

}  // namespace arecel

#endif  // ARECEL_CORE_EVALUATOR_H_
