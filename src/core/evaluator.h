#ifndef ARECEL_CORE_EVALUATOR_H_
#define ARECEL_CORE_EVALUATOR_H_

#include <string>
#include <vector>

#include "core/estimator.h"
#include "util/stats.h"

namespace arecel {

// Result of training + evaluating one estimator on one dataset — the unit
// behind Table 4 (accuracy) and Figure 4 (training/inference cost).
struct EstimatorReport {
  std::string estimator;
  std::string dataset;
  QuantileSummary qerror;          // 50th/95th/99th/max.
  std::vector<double> raw_qerrors;
  double train_seconds = 0.0;
  double avg_inference_ms = 0.0;
  size_t model_size_bytes = 0;
};

// Trains `estimator` (with `train` as the labelled workload for query-driven
// methods) and evaluates q-errors over `test`. Wall-clock timings included.
// An empty `test` produces an all-zero summary and zero inference time.
EstimatorReport EvaluateOnDataset(CardinalityEstimator& estimator,
                                  const Table& table, const Workload& train,
                                  const Workload& test, uint64_t seed = 42);

// Accuracy of an already-trained estimator on `test`, as the Table 4
// quantile summary. This is the hook the conformance/golden-baseline
// harness (src/testing/) shares with EvaluateOnDataset, so both report the
// same statistic.
QuantileSummary EvaluateQErrorSummary(const CardinalityEstimator& estimator,
                                      const Workload& test, size_t rows);

}  // namespace arecel

#endif  // ARECEL_CORE_EVALUATOR_H_
