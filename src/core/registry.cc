#include "core/registry.h"

#include "estimators/extensions/feedback.h"
#include "estimators/join/independence.h"
#include "estimators/join/join_sampling.h"
#include "estimators/join/mscn_join.h"
#include "estimators/learned/deepdb.h"
#include "estimators/learned/dqm.h"
#include "estimators/learned/lw_nn.h"
#include "estimators/learned/lw_xgb.h"
#include "estimators/learned/mscn.h"
#include "estimators/learned/naru.h"
#include "estimators/traditional/bayes.h"
#include "estimators/traditional/dbms.h"
#include "estimators/traditional/kde.h"
#include "estimators/traditional/mhist.h"
#include "estimators/traditional/quicksel.h"
#include "estimators/traditional/sampling.h"
#include "util/check.h"

namespace arecel {

const std::vector<std::string>& TraditionalEstimatorNames() {
  static const std::vector<std::string>* names = new std::vector<std::string>{
      "postgres", "mysql",    "dbms-a", "sampling",
      "mhist",    "quicksel", "bayes",  "kde-fb"};
  return *names;
}

const std::vector<std::string>& LearnedEstimatorNames() {
  static const std::vector<std::string>* names = new std::vector<std::string>{
      "mscn", "lw-xgb", "lw-nn", "naru", "deepdb"};
  return *names;
}

const std::vector<std::string>& ExtendedEstimatorNames() {
  static const std::vector<std::string>* names = new std::vector<std::string>{
      "dqm-d", "feedback-knn", "feedback-corrected"};
  return *names;
}

std::vector<std::string> AllEstimatorNames() {
  std::vector<std::string> all = TraditionalEstimatorNames();
  for (const auto& name : LearnedEstimatorNames()) all.push_back(name);
  return all;
}

const std::vector<std::string>& JoinEstimatorNames() {
  static const std::vector<std::string>* names = new std::vector<std::string>{
      "postgres-join", "sampling-join", "mscn-join"};
  return *names;
}

std::vector<std::string> AllRegistryNames() {
  std::vector<std::string> all = AllEstimatorNames();
  for (const auto& name : ExtendedEstimatorNames()) all.push_back(name);
  for (const auto& name : JoinEstimatorNames()) all.push_back(name);
  return all;
}

std::unique_ptr<CardinalityEstimator> MakeEstimator(const std::string& name) {
  if (name == "postgres") return MakePostgresEstimator();
  if (name == "mysql") return MakeMysqlEstimator();
  if (name == "dbms-a") return MakeDbmsAEstimator();
  if (name == "sampling") return std::make_unique<SamplingEstimator>();
  if (name == "mhist") return std::make_unique<MhistEstimator>();
  if (name == "quicksel") return std::make_unique<QuickSelEstimator>();
  if (name == "bayes") return std::make_unique<BayesEstimator>();
  if (name == "kde-fb") return std::make_unique<KdeFbEstimator>();
  if (name == "mscn") return std::make_unique<MscnEstimator>();
  if (name == "lw-xgb") return std::make_unique<LwXgbEstimator>();
  if (name == "lw-nn") return std::make_unique<LwNnEstimator>();
  if (name == "naru") return std::make_unique<NaruEstimator>();
  if (name == "deepdb") return std::make_unique<DeepDbEstimator>();
  if (name == "dqm-d") return std::make_unique<DqmDEstimator>();
  if (name == "feedback-knn") return std::make_unique<FeedbackKnnEstimator>();
  if (name == "feedback-corrected") return MakeFeedbackCorrectedEstimator();
  if (name == "postgres-join") return MakeJoinIndependenceEstimator();
  if (name == "sampling-join") return MakeJoinSamplingEstimator();
  if (name == "mscn-join") return MakeMscnJoinEstimator();
  ARECEL_CHECK_MSG(false, name.c_str());
  return nullptr;
}

}  // namespace arecel
