#ifndef ARECEL_CORE_MODEL_IO_H_
#define ARECEL_CORE_MODEL_IO_H_

#include <string>

#include "core/estimator.h"
#include "robustness/failure.h"

namespace arecel {

// Model persistence: save a trained estimator's fitted state to a file and
// load it back into a freshly constructed estimator of the same kind —
// train once, serve from the model file elsewhere (the deployment path the
// paper's cost analysis presumes for the "production-plausible" methods).
//
// Supported estimators implement SerializeModel/DeserializeModel:
// postgres / mysql / dbms-a (per-column statistics), sampling (the
// materialized sample), mhist (the bucket directory), lw-xgb (featurizer
// statistics + boosted trees), lw-nn (featurizer statistics + dense-layer
// weights), mscn (column ranges + materialized sample + the three module
// MLPs), naru (column binnings + the autoregressive backbone, both ResMADE
// and Transformer), feedback-knn / feedback-corrected (the online feedback
// store, plus the wrapped base model for the latter). SaveEstimator returns
// false for estimators without support.

bool SaveEstimator(const CardinalityEstimator& estimator,
                   const std::string& path);

// True when `estimator` implements model persistence (probes SerializeModel
// with a counting writer — state is walked but nothing is buffered and no
// file is written, so the check is cheap enough for per-request use in the
// serving layer). Call on a trained instance. The conformance suite uses
// this to decide whether the round-trip invariant applies or is reported as
// skipped.
bool SupportsPersistence(const CardinalityEstimator& estimator);

// `estimator` must be a default-constructed instance of the same kind
// (same Name()) that was saved; returns false on mismatch or corruption.
bool LoadEstimator(CardinalityEstimator* estimator, const std::string& path);

// ---- Typed byte-level interface (the model store's payload format) ----

// Outcome of a typed load. kCorruptModel means the bytes failed validation
// — truncated stream, bad magic, impossible topology — and the estimator
// instance may hold PARTIALLY deserialized state: callers must discard the
// instance (build a fresh one) rather than serve or retrain it.
// kPersistenceFailure covers non-corruption refusals (missing file,
// estimator-kind mismatch, no persistence support).
struct ModelLoadResult {
  FailureKind kind = FailureKind::kNone;
  std::string detail;

  bool ok() const { return kind == FailureKind::kNone; }
};

// Serializes `estimator` into the framed in-memory form SaveEstimator
// writes to disk (magic + version + name + payload). Returns false when the
// estimator does not support persistence.
bool SerializeEstimatorBytes(const CardinalityEstimator& estimator,
                             std::string* bytes);

// Typed counterpart of LoadEstimator over in-memory bytes; the model store
// (src/store/) loads recovered generations through this.
ModelLoadResult LoadEstimatorBytes(CardinalityEstimator* estimator,
                                   const std::string& bytes);

// Typed load from a file: kPersistenceFailure when the file is unreadable,
// otherwise LoadEstimatorBytes on its contents.
ModelLoadResult LoadEstimatorDetailed(CardinalityEstimator* estimator,
                                      const std::string& path);

}  // namespace arecel

#endif  // ARECEL_CORE_MODEL_IO_H_
