#ifndef ARECEL_CORE_MODEL_IO_H_
#define ARECEL_CORE_MODEL_IO_H_

#include <string>

#include "core/estimator.h"

namespace arecel {

// Model persistence: save a trained estimator's fitted state to a file and
// load it back into a freshly constructed estimator of the same kind —
// train once, serve from the model file elsewhere (the deployment path the
// paper's cost analysis presumes for the "production-plausible" methods).
//
// Supported estimators implement SerializeModel/DeserializeModel:
// postgres / mysql / dbms-a (per-column statistics), sampling (the
// materialized sample), mhist (the bucket directory), lw-xgb (featurizer
// statistics + boosted trees), lw-nn (featurizer statistics + dense-layer
// weights), feedback-knn / feedback-corrected (the online feedback store,
// plus the wrapped base model for the latter). SaveEstimator returns false
// for estimators without support.

bool SaveEstimator(const CardinalityEstimator& estimator,
                   const std::string& path);

// True when `estimator` implements model persistence (probes SerializeModel
// with a counting writer — state is walked but nothing is buffered and no
// file is written, so the check is cheap enough for per-request use in the
// serving layer). Call on a trained instance. The conformance suite uses
// this to decide whether the round-trip invariant applies or is reported as
// skipped.
bool SupportsPersistence(const CardinalityEstimator& estimator);

// `estimator` must be a default-constructed instance of the same kind
// (same Name()) that was saved; returns false on mismatch or corruption.
bool LoadEstimator(CardinalityEstimator* estimator, const std::string& path);

}  // namespace arecel

#endif  // ARECEL_CORE_MODEL_IO_H_
