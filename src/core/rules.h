#ifndef ARECEL_CORE_RULES_H_
#define ARECEL_CORE_RULES_H_

#include <string>
#include <vector>

#include "core/estimator.h"

namespace arecel {

// The five logical rules for cardinality estimators proposed in §6.3:
//   Monotonicity — a stricter predicate must not increase the estimate;
//   Consistency  — a query equals the sum of its disjoint splits;
//   Stability    — the same query always gets the same estimate;
//   Fidelity-A   — querying the whole domain estimates selectivity 1;
//   Fidelity-B   — an invalid predicate (lo > hi) estimates 0.
// The checker probes the estimator's native output (no fix-up wrappers),
// as the paper does, and reports violation counts per rule.

struct RuleCheckOptions {
  size_t trials = 50;
  uint64_t seed = 99;
  // Relative slack for Monotonicity/Consistency/Fidelity-A and absolute
  // slack for Stability/Fidelity-B (in selectivity units).
  double relative_tolerance = 1e-6;
  double absolute_tolerance = 1e-9;
};

struct RuleResult {
  std::string rule;
  size_t trials = 0;
  size_t violations = 0;
  double worst_violation = 0.0;  // largest observed excess, selectivity units.

  bool satisfied() const { return violations == 0; }
};

// Runs all five rules against `estimator` (already trained on `table`).
// Returns results in the order: Monotonicity, Consistency, Stability,
// Fidelity-A, Fidelity-B.
std::vector<RuleResult> CheckLogicalRules(
    const CardinalityEstimator& estimator, const Table& table,
    const RuleCheckOptions& options = {});

}  // namespace arecel

#endif  // ARECEL_CORE_RULES_H_
