#ifndef ARECEL_CORE_REGISTRY_H_
#define ARECEL_CORE_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "core/estimator.h"

namespace arecel {

// Names of the eight traditional estimators, in the paper's Table 4 order.
const std::vector<std::string>& TraditionalEstimatorNames();

// Names of the five learned estimators, in the paper's Table 4 order.
const std::vector<std::string>& LearnedEstimatorNames();

// All thirteen, traditional first.
std::vector<std::string> AllEstimatorNames();

// Every name this registry can construct: the paper's thirteen followed by
// the extended estimators. The conformance suite (src/testing/) sweeps this
// list, so an estimator added here is automatically held to the behavioral
// contract.
std::vector<std::string> AllRegistryNames();

// Extra estimators beyond the paper's thirteen: "dqm-d" (the taxonomy's
// seventh learned method, excluded from the paper's evaluation as "similar
// to Naru"). Our simplified VEGAS sampler matches Naru on low-dimensional
// tables but its product-form proposal cannot follow correlated mass on
// wide tables — see bench_ablation_backbones and EXPERIMENTS.md.
const std::vector<std::string>& ExtendedEstimatorNames();

// Join-capable estimators (DESIGN.md §13): every name here constructs an
// estimator whose SupportsJoins() is true — "postgres-join" (per-table
// statistics under full independence), "sampling-join" (correlated sampling
// over FK edges), "mscn-join" (full three-module MSCN). They also satisfy
// the single-table contract, so they appear in AllRegistryNames() and are
// swept by the conformance suite like everything else.
const std::vector<std::string>& JoinEstimatorNames();

// Creates an estimator by name with this repository's default "bench
// profile" hyper-parameters (scaled-down model sizes / epochs; see
// DESIGN.md §2 substitution 5). Aborts on an unknown name.
std::unique_ptr<CardinalityEstimator> MakeEstimator(const std::string& name);

}  // namespace arecel

#endif  // ARECEL_CORE_REGISTRY_H_
