#include "core/dynamic.h"

#include <algorithm>
#include <cmath>

#include "scan/block_scan.h"
#include "util/stats.h"
#include "util/timer.h"
#include "workload/generator.h"

namespace arecel {

DynamicProfile ProfileDynamicUpdate(CardinalityEstimator& estimator,
                                    const Table& updated_table,
                                    size_t old_row_count,
                                    const Workload& test,
                                    const DynamicOptions& options) {
  DynamicProfile profile;
  profile.estimator = estimator.Name();

  // 1. Stale model answers, evaluated against the *updated* ground truth.
  profile.stale_errors =
      EvaluateQErrors(estimator, test, updated_table.num_rows());

  // 2. Refresh training data for query-driven methods: generate an update
  // workload and label it against a uniform sample, timing the labelling.
  double label_seconds = 0.0;
  Workload update_workload;
  if (estimator.IsQueryDriven()) {
    Timer label_timer;
    update_workload.queries = GenerateQueries(
        updated_table, options.update_query_count, options.seed + 1);
    const size_t sample_rows = std::max<size_t>(
        100, static_cast<size_t>(static_cast<double>(
                 updated_table.num_rows()) * options.label_sample_fraction));
    const Table sample = updated_table.SampleRows(
        std::min(sample_rows, updated_table.num_rows()), options.seed + 2);
    // Relabeling happens after every append step, so it rides the
    // shared-scan engine: one pass over the sample for the whole update
    // workload instead of one scan per query.
    update_workload.selectivities =
        scan::BlockScanner(sample).Label(update_workload.queries);
    label_seconds = label_timer.ElapsedSeconds();
  }

  // 3. Model update (wall clock), scaled by the simulated device.
  UpdateContext context;
  context.old_row_count = old_row_count;
  context.update_workload =
      estimator.IsQueryDriven() ? &update_workload : nullptr;
  context.epochs = options.update_epochs;
  context.seed = options.seed + 3;
  Timer update_timer;
  estimator.Update(updated_table, context);
  const double model_seconds =
      update_timer.ElapsedSeconds() /
      SimulatedSpeedup(estimator.Name(), options.device, /*training=*/true);
  profile.update_seconds = model_seconds + label_seconds;

  // 4. Updated model answers.
  profile.updated_errors =
      EvaluateQErrors(estimator, test, updated_table.num_rows());
  return profile;
}

double DynamicP99(const DynamicProfile& profile, double interval_seconds) {
  const size_t n = profile.stale_errors.size();
  if (!FinishedInTime(profile, interval_seconds))
    return Percentile(profile.stale_errors, 99);
  const size_t stale_count = std::min(
      n, static_cast<size_t>(std::floor(static_cast<double>(n) *
                                        profile.update_seconds /
                                        interval_seconds)));
  std::vector<double> mixed;
  mixed.reserve(n);
  mixed.insert(mixed.end(), profile.stale_errors.begin(),
               profile.stale_errors.begin() + static_cast<long>(stale_count));
  mixed.insert(mixed.end(),
               profile.updated_errors.begin() + static_cast<long>(stale_count),
               profile.updated_errors.end());
  return Percentile(mixed, 99);
}

DynamicResult SimulateDynamicEnvironment(CardinalityEstimator& estimator,
                                         const Table& updated_table,
                                         size_t old_row_count,
                                         const Workload& test,
                                         const DynamicOptions& options) {
  const DynamicProfile profile = ProfileDynamicUpdate(
      estimator, updated_table, old_row_count, test, options);
  DynamicResult result;
  result.estimator = profile.estimator;
  result.update_seconds = profile.update_seconds;
  result.finished_in_time = FinishedInTime(profile, options.interval_seconds);
  result.stale_p99 = Percentile(profile.stale_errors, 99);
  result.updated_p99 = Percentile(profile.updated_errors, 99);
  result.dynamic_p99 = DynamicP99(profile, options.interval_seconds);
  return result;
}

}  // namespace arecel
