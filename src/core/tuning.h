#ifndef ARECEL_CORE_TUNING_H_
#define ARECEL_CORE_TUNING_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/estimator.h"

namespace arecel {

// Hyper-parameter tuning harness (§4.3 "Hyper-parameter Tuning" and
// Table 5). Each candidate is a factory producing a freshly configured
// estimator; the harness trains every candidate, measures its max q-error
// on the validation workload, and reports the spread — the paper's
// "ratio between the worst and best max q-error".

struct TuningCandidate {
  std::string label;
  std::function<std::unique_ptr<CardinalityEstimator>()> make;
};

struct TuningOutcome {
  std::string label;
  double max_qerror = 0.0;
  double p99_qerror = 0.0;
  double train_seconds = 0.0;
};

struct TuningResult {
  std::vector<TuningOutcome> outcomes;
  int best_index = -1;   // smallest max q-error.
  int worst_index = -1;  // largest max q-error.

  double WorstBestRatio() const;
  const TuningOutcome& best() const { return outcomes[best_index]; }
};

TuningResult RunTuning(const std::vector<TuningCandidate>& candidates,
                       const Table& table, const Workload& train,
                       const Workload& validation, uint64_t seed = 11);

}  // namespace arecel

#endif  // ARECEL_CORE_TUNING_H_
