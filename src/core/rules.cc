#include "core/rules.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/random.h"
#include "workload/generator.h"

namespace arecel {

namespace {

// Columns with enough distinct values to shrink/split a range meaningfully.
std::vector<int> RangeableColumns(const Table& table) {
  std::vector<int> cols;
  for (size_t c = 0; c < table.num_cols(); ++c) {
    if (!table.column(c).categorical && table.column(c).domain.size() >= 8)
      cols.push_back(static_cast<int>(c));
  }
  return cols;
}

// A random close-range query on `col` spanning a decent chunk of values,
// plus up to one extra random predicate for context.
Query RandomRangeQuery(const Table& table, int col, Rng& rng) {
  const Column& column = table.column(static_cast<size_t>(col));
  const size_t domain = column.domain.size();
  const size_t a = rng.UniformInt(static_cast<uint64_t>(domain - 4));
  const size_t b = a + 4 +
                   rng.UniformInt(static_cast<uint64_t>(domain - a - 4));
  Query query;
  query.predicates.push_back(
      {col, column.domain[a], column.domain[std::min(b, domain - 1)]});
  return query;
}

}  // namespace

std::vector<RuleResult> CheckLogicalRules(
    const CardinalityEstimator& estimator, const Table& table,
    const RuleCheckOptions& options) {
  Rng rng(options.seed);
  const std::vector<int> cols = RangeableColumns(table);
  ARECEL_CHECK_MSG(!cols.empty(),
                   "rule checking needs at least one range-able column");
  auto pick_col = [&] {
    return cols[rng.UniformInt(static_cast<uint64_t>(cols.size()))];
  };

  std::vector<RuleResult> results;

  // ---- Monotonicity ----
  {
    RuleResult r{.rule = "monotonicity", .trials = options.trials};
    const double shrinks[] = {0.01, 0.05, 0.25};
    for (size_t t = 0; t < options.trials; ++t) {
      const int col = pick_col();
      Query base = RandomRangeQuery(table, col, rng);
      // Stricter query: shrink the range on each side; small shrinks catch
      // local non-monotonicity that coarse ones smooth over.
      Query strict = base;
      const double lo = base.predicates[0].lo;
      const double hi = base.predicates[0].hi;
      const double width = hi - lo;
      const double shrink = shrinks[t % 3];
      strict.predicates[0].lo = lo + shrink * width;
      strict.predicates[0].hi = hi - shrink * width;
      const double base_est = estimator.EstimateSelectivity(base);
      const double strict_est = estimator.EstimateSelectivity(strict);
      const double excess = strict_est - base_est * (1.0 +
                                                     options.relative_tolerance) -
                            options.absolute_tolerance;
      if (excess > 0) {
        ++r.violations;
        r.worst_violation = std::max(r.worst_violation, excess);
      }
    }
    results.push_back(r);
  }

  // ---- Consistency ----
  {
    RuleResult r{.rule = "consistency", .trials = options.trials};
    for (size_t t = 0; t < options.trials; ++t) {
      const int col = pick_col();
      const Column& column = table.column(static_cast<size_t>(col));
      Query base = RandomRangeQuery(table, col, rng);
      // Split at a domain value strictly inside (lo, hi]: left gets
      // [lo, prev(m)], right gets [m, hi] — disjoint and exhaustive over
      // the discrete domain.
      const int lo_code = column.LowerBoundCode(base.predicates[0].lo);
      const int hi_code = column.UpperBoundCode(base.predicates[0].hi);
      if (hi_code - lo_code < 2) {
        --r.trials;
        continue;
      }
      const int m = lo_code + 1 +
                    static_cast<int>(rng.UniformInt(
                        static_cast<uint64_t>(hi_code - lo_code - 1)));
      Query left = base, right = base;
      left.predicates[0].hi = column.domain[static_cast<size_t>(m - 1)];
      right.predicates[0].lo = column.domain[static_cast<size_t>(m)];
      const double whole = estimator.EstimateSelectivity(base);
      const double parts = estimator.EstimateSelectivity(left) +
                           estimator.EstimateSelectivity(right);
      const double diff = std::fabs(whole - parts);
      const double allowed = options.absolute_tolerance +
                             options.relative_tolerance *
                                 std::max(whole, parts);
      if (diff > allowed) {
        ++r.violations;
        r.worst_violation = std::max(r.worst_violation, diff - allowed);
      }
    }
    results.push_back(r);
  }

  // ---- Stability ----
  {
    RuleResult r{.rule = "stability", .trials = options.trials};
    for (size_t t = 0; t < options.trials; ++t) {
      const Query query = RandomRangeQuery(table, pick_col(), rng);
      const double first = estimator.EstimateSelectivity(query);
      double worst = 0.0;
      for (int rep = 0; rep < 4; ++rep) {
        worst = std::max(
            worst, std::fabs(estimator.EstimateSelectivity(query) - first));
      }
      if (worst > options.absolute_tolerance) {
        ++r.violations;
        r.worst_violation = std::max(r.worst_violation, worst);
      }
    }
    results.push_back(r);
  }

  // ---- Fidelity-A: whole-domain query estimates 1. ----
  {
    RuleResult r{.rule = "fidelity-a", .trials = options.trials};
    for (size_t t = 0; t < options.trials; ++t) {
      // Whole-domain predicates on a random subset of columns (any arity):
      // SELECT * WHERE min_i <= A_i <= max_i for each chosen i.
      const int arity = 1 + static_cast<int>(rng.UniformInt(
                                static_cast<uint64_t>(table.num_cols())));
      const std::vector<int> chosen = rng.SampleWithoutReplacement(
          static_cast<int>(table.num_cols()), arity);
      Query query;
      for (int col : chosen) {
        const Column& column = table.column(static_cast<size_t>(col));
        query.predicates.push_back({col, column.min(), column.max()});
      }
      const double est = estimator.EstimateSelectivity(query);
      const double diff = std::fabs(est - 1.0);
      if (diff > options.relative_tolerance) {
        ++r.violations;
        r.worst_violation = std::max(r.worst_violation, diff);
      }
    }
    results.push_back(r);
  }

  // ---- Fidelity-B: invalid predicate estimates 0. ----
  {
    RuleResult r{.rule = "fidelity-b", .trials = options.trials};
    for (size_t t = 0; t < options.trials; ++t) {
      const int col = pick_col();
      const Column& column = table.column(static_cast<size_t>(col));
      const size_t domain = column.domain.size();
      const size_t a = 1 + rng.UniformInt(static_cast<uint64_t>(domain - 1));
      Query query;
      // lo > hi: e.g. WHERE 100 <= A <= 10.
      query.predicates.push_back(
          {col, column.domain[a], column.domain[a / 2]});
      const double est = estimator.EstimateSelectivity(query);
      if (est > options.absolute_tolerance) {
        ++r.violations;
        r.worst_violation = std::max(r.worst_violation, est);
      }
    }
    results.push_back(r);
  }

  return results;
}

}  // namespace arecel
