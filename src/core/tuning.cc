#include "core/tuning.h"

#include "util/check.h"
#include "util/stats.h"
#include "util/timer.h"

namespace arecel {

double TuningResult::WorstBestRatio() const {
  ARECEL_CHECK(best_index >= 0 && worst_index >= 0);
  const double best = outcomes[static_cast<size_t>(best_index)].max_qerror;
  const double worst = outcomes[static_cast<size_t>(worst_index)].max_qerror;
  return best > 0 ? worst / best : 0.0;
}

TuningResult RunTuning(const std::vector<TuningCandidate>& candidates,
                       const Table& table, const Workload& train,
                       const Workload& validation, uint64_t seed) {
  ARECEL_CHECK(!candidates.empty());
  TuningResult result;
  for (const TuningCandidate& candidate : candidates) {
    std::unique_ptr<CardinalityEstimator> estimator = candidate.make();
    TrainContext context;
    context.training_workload = &train;
    context.seed = seed;
    Timer timer;
    estimator->Train(table, context);
    TuningOutcome outcome;
    outcome.label = candidate.label;
    outcome.train_seconds = timer.ElapsedSeconds();
    const std::vector<double> errors =
        EvaluateQErrors(*estimator, validation, table.num_rows());
    const QuantileSummary summary = Summarize(errors);
    outcome.max_qerror = summary.max;
    outcome.p99_qerror = summary.p99;
    result.outcomes.push_back(outcome);
  }
  for (size_t i = 0; i < result.outcomes.size(); ++i) {
    if (result.best_index < 0 ||
        result.outcomes[i].max_qerror <
            result.outcomes[static_cast<size_t>(result.best_index)].max_qerror)
      result.best_index = static_cast<int>(i);
    if (result.worst_index < 0 ||
        result.outcomes[i].max_qerror >
            result.outcomes[static_cast<size_t>(result.worst_index)]
                .max_qerror)
      result.worst_index = static_cast<int>(i);
  }
  return result;
}

}  // namespace arecel
