#ifndef ARECEL_CORE_DEVICE_H_
#define ARECEL_CORE_DEVICE_H_

#include <string>

namespace arecel {

// Simulated execution device (DESIGN.md §2, substitution 4).
//
// The paper runs the NN methods on both CPUs and an NVIDIA Tesla P100.
// This reproduction has no GPU; instead, GPU timings are modelled as the
// measured CPU time divided by a per-method speedup factor calibrated to
// the paper's Figure 4 narrative:
//  * Naru: training 5-15x faster on GPU, inference up to 20x;
//  * LW-NN: training up to 20x faster, inference ~5x;
//  * MSCN: roughly flat — "GPU is even 3.5x slower than CPU on small
//    datasets" for training because of its conditional control flow;
//  * everything else never runs on a GPU (factor 1).
// Figure 4 and Figure 8 benches use these factors and label the results
// "simulated GPU".
enum class Device { kCpu, kGpu };

// Multiplicative speedup of `device` over CPU for the named estimator.
// Returns 1.0 for kCpu and for methods without a GPU implementation.
double SimulatedSpeedup(const std::string& estimator_name, Device device,
                        bool training);

// "cpu" / "gpu(sim)".
std::string DeviceLabel(Device device);

}  // namespace arecel

#endif  // ARECEL_CORE_DEVICE_H_
