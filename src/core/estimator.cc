#include "core/estimator.h"

#include <algorithm>
#include <cmath>

#include "join/join_executor.h"
#include "util/check.h"

namespace arecel {

void CardinalityEstimator::Update(const Table& table,
                                  const UpdateContext& context) {
  TrainContext train_context;
  train_context.training_workload = context.update_workload;
  train_context.seed = context.seed;
  Train(table, train_context);
}

double CardinalityEstimator::EstimateCardinality(const Query& query,
                                                 size_t rows) const {
  const double sel = EstimateSelectivity(query);
  const double card = sel * static_cast<double>(rows);
  return std::clamp(card, 0.0, static_cast<double>(rows));
}

void CardinalityEstimator::TrainJoin(const Schema& schema,
                                     const JoinTrainContext& context) {
  (void)schema;
  (void)context;
  ARECEL_CHECK_MSG(false, "estimator does not support joins (TrainJoin)");
}

double CardinalityEstimator::EstimateJoinSelectivity(
    const JoinQuery& query) const {
  (void)query;
  ARECEL_CHECK_MSG(false,
                   "estimator does not support joins (EstimateJoinSelectivity)");
  return 0.0;
}

double CardinalityEstimator::EstimateJoinCardinality(
    const Schema& schema, const JoinQuery& query) const {
  const double denom = join::JoinExecutor::RowsProduct(schema, query);
  const double card = EstimateJoinSelectivity(query) * denom;
  return std::clamp(card, 0.0, denom);
}

double QError(double estimated_cardinality, double actual_cardinality) {
  // A NaN estimate would otherwise clamp to 1.0 (std::max with an unordered
  // NaN returns its first argument) and score as near-perfect; an infinite
  // one used to abort the whole process. Both now yield the defined
  // worst-case sentinel so evaluation keeps going and aggregates expose the
  // broken estimator.
  if (!std::isfinite(estimated_cardinality) ||
      !std::isfinite(actual_cardinality)) {
    return kInvalidQError;
  }
  const double est = std::max(1.0, estimated_cardinality);
  const double act = std::max(1.0, actual_cardinality);
  return std::max(est, act) / std::min(est, act);
}

std::vector<double> EvaluateQErrors(const CardinalityEstimator& estimator,
                                    const Workload& workload, size_t rows) {
  std::vector<double> errors(workload.size());
  for (size_t i = 0; i < workload.size(); ++i) {
    const double est =
        estimator.EstimateCardinality(workload.queries[i], rows);
    errors[i] = QError(est, workload.Cardinality(i, rows));
  }
  return errors;
}

}  // namespace arecel
