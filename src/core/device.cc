#include "core/device.h"

namespace arecel {

double SimulatedSpeedup(const std::string& estimator_name, Device device,
                        bool training) {
  if (device == Device::kCpu) return 1.0;
  if (estimator_name == "naru") return training ? 8.0 : 12.0;
  if (estimator_name == "lw-nn") return training ? 15.0 : 5.0;
  if (estimator_name == "mscn") return training ? 0.8 : 1.0;
  return 1.0;  // no GPU path for the remaining methods.
}

std::string DeviceLabel(Device device) {
  return device == Device::kCpu ? "cpu" : "gpu(sim)";
}

}  // namespace arecel
