#ifndef ARECEL_CORE_DYNAMIC_H_
#define ARECEL_CORE_DYNAMIC_H_

#include <string>

#include "core/device.h"
#include "core/estimator.h"

namespace arecel {

// The paper's §5.1 dynamic environment. Given an estimator trained on the
// old table and a stream of n test queries uniformly spread over [0, T]:
// the model update starts at time 0 and finishes at t_u, so the first
// n * t_u / T queries are answered by the stale model and the rest by the
// updated model; the metric is the 99th-percentile q-error over all n.
//
// t_u is measured wall-clock: for query-driven methods it includes the time
// to relabel the update workload against a data sample (the paper counts
// this as "a major difference between data-driven and query-driven
// methods"); the simulated-GPU device divides the model-update portion by
// the per-method speedup factor.
struct DynamicOptions {
  double interval_seconds = 60.0;  // T.
  int update_epochs = 0;           // 0 = the estimator's own default.
  Device device = Device::kCpu;
  // Query-driven refresh: how many queries to relabel and against how large
  // a uniform sample of the updated table (paper: 8K-16K queries, 5%).
  size_t update_query_count = 2000;
  double label_sample_fraction = 0.05;
  uint64_t seed = 7;
};

struct DynamicResult {
  std::string estimator;
  double update_seconds = 0.0;  // total t_u after device scaling.
  bool finished_in_time = false;
  double stale_p99 = 0.0;    // whole workload on the stale model.
  double updated_p99 = 0.0;  // whole workload on the updated model.
  double dynamic_p99 = 0.0;  // the paper's reported mixture metric.
};

// `estimator` must already be trained on the old table (the first
// `old_row_count` rows of `updated_table`). `test` is labelled against
// `updated_table`. The estimator is updated in place.
DynamicResult SimulateDynamicEnvironment(CardinalityEstimator& estimator,
                                         const Table& updated_table,
                                         size_t old_row_count,
                                         const Workload& test,
                                         const DynamicOptions& options);

// One-update profile that lets callers evaluate many interval lengths T
// without retraining: the stale/updated per-query error vectors plus the
// measured update time. Figure 6 sweeps T = {high, medium, low} update
// frequency from a single profile per estimator.
struct DynamicProfile {
  std::string estimator;
  double update_seconds = 0.0;  // t_u after device scaling, incl. labelling.
  std::vector<double> stale_errors;
  std::vector<double> updated_errors;
};

DynamicProfile ProfileDynamicUpdate(CardinalityEstimator& estimator,
                                    const Table& updated_table,
                                    size_t old_row_count,
                                    const Workload& test,
                                    const DynamicOptions& options);

// 99th percentile of the stale/updated error mixture for interval T.
// When the update does not finish within T the whole stream is answered by
// the stale model (the paper marks these cells with an "x").
double DynamicP99(const DynamicProfile& profile, double interval_seconds);

inline bool FinishedInTime(const DynamicProfile& profile,
                           double interval_seconds) {
  return profile.update_seconds < interval_seconds;
}

}  // namespace arecel

#endif  // ARECEL_CORE_DYNAMIC_H_
