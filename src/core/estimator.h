#ifndef ARECEL_CORE_ESTIMATOR_H_
#define ARECEL_CORE_ESTIMATOR_H_

#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "data/schema.h"
#include "data/table.h"
#include "util/archive.h"
#include "util/cancellation.h"
#include "workload/generator.h"
#include "workload/join_generator.h"
#include "workload/join_query.h"
#include "workload/query.h"

namespace arecel {

// What an estimator may consume at training time. Data-driven methods (Naru,
// DeepDB, histograms, sampling, Bayes) read only `table`; query-driven
// methods (MSCN, LW-NN/XGB, QuickSel, KDE-FB) additionally read the labelled
// `training_workload`, exactly as in the paper's setup (§3).
struct TrainContext {
  // Labelled queries for query-driven methods; may be empty for data-driven
  // ones. Selectivities are ground truth over the training table.
  const Workload* training_workload = nullptr;

  // Size budget as a fraction of the raw data size (the paper uses 1.5%).
  double size_budget_fraction = 0.015;

  // Seed forwarded to any stochastic training component.
  uint64_t seed = 42;

  // Cooperative cancellation, set by the robustness watchdog when the
  // training deadline passes (src/robustness/guard.h). Iterative trainers
  // should poll it between epochs and exit early; the partially trained
  // model is discarded by the harness either way. May be null.
  const CancellationToken* cancellation = nullptr;
};

// Context for a §5 dynamic-environment model update after data was appended
// to the table.
struct UpdateContext {
  // Number of rows the estimator was previously trained on; rows at index
  // >= old_row_count are new.
  size_t old_row_count = 0;

  // Refreshed labelled queries for query-driven methods (labels recomputed
  // over the updated table, possibly approximately via a sample — the
  // harness accounts for that labelling time separately).
  const Workload* update_workload = nullptr;

  // Number of passes for iteratively trained models (the paper updates Naru
  // with 1 epoch by default; Figure 7 sweeps this).
  int epochs = 1;

  uint64_t seed = 43;
};

// What a join-capable estimator may consume at training time: the full
// schema (data-driven methods read the tables and FK edges) plus a labelled
// join workload for query-driven methods. Mirrors TrainContext one level up.
struct JoinTrainContext {
  // Labelled join queries; selectivities are Cartesian-product ground truth
  // over the schema. May be null for data-driven methods.
  const JoinWorkload* training_workload = nullptr;

  double size_budget_fraction = 0.015;
  uint64_t seed = 42;
  const CancellationToken* cancellation = nullptr;
};

// Common interface of all thirteen estimators in the study.
//
// Estimates are *selectivities* in [0, 1]; callers convert to cardinalities.
// Train() must be called before EstimateSelectivity(). Update() retrains or
// incrementally refreshes the model over the updated table.
class CardinalityEstimator {
 public:
  virtual ~CardinalityEstimator() = default;

  virtual std::string Name() const = 0;

  virtual void Train(const Table& table, const TrainContext& context) = 0;

  virtual double EstimateSelectivity(const Query& query) const = 0;

  // Default update: full retrain with the update workload as training data.
  virtual void Update(const Table& table, const UpdateContext& context);

  // Approximate model size in bytes (reported against the 1.5% budget).
  virtual size_t SizeBytes() const = 0;

  // True for methods that require a labelled workload to train.
  virtual bool IsQueryDriven() const { return false; }

  // True when EstimateSelectivity on a trained model is a pure read, safe
  // to call concurrently from many threads. Estimators whose inference
  // draws fresh randomness from a mutable per-instance counter (naru,
  // bayes, dqm-d) or memoizes internally (guarded) override this to false;
  // the serving layer (src/serve/) serializes their dispatch instead of
  // fanning it out.
  virtual bool ThreadSafeEstimates() const { return true; }

  // Builds inference-optimized weight forms (packed/quantized, ml/packed.h)
  // for estimators with a neural backbone; a no-op for everything else.
  // Called by the serving layer (ModelManager) after a cold load or refresh,
  // before the model is published — never during training, so training
  // numerics and goldens are unaffected. Must not run concurrently with
  // EstimateSelectivity; Train/Update/DeserializeModel drop the packs.
  virtual void PackForServing() {}

  // Optional model persistence (core/model_io.h): estimators that support
  // it can be trained once and served from a saved model file by another
  // process. Defaults report "unsupported".
  virtual bool SerializeModel(ByteWriter* writer) const {
    (void)writer;
    return false;
  }
  virtual bool DeserializeModel(ByteReader* reader) {
    (void)reader;
    return false;
  }

  // ---- Join capability surface (DESIGN.md §13) -------------------------
  //
  // Join-capable estimators (postgres-join, sampling-join, mscn-join)
  // override all three members below; everything else keeps the defaults
  // and is skipped by join sweeps via the SupportsJoins() probe, mirroring
  // how SupportsPersistence gates the model-store sweeps.

  // True when TrainJoin / EstimateJoinSelectivity are implemented.
  virtual bool SupportsJoins() const { return false; }

  // Trains over a multi-table schema. Only valid when SupportsJoins().
  virtual void TrainJoin(const Schema& schema, const JoinTrainContext& context);

  // Selectivity of a join query against the Cartesian product of its
  // tables, in [0, 1]. Only valid when SupportsJoins() after TrainJoin.
  virtual double EstimateJoinSelectivity(const JoinQuery& query) const;

  // Estimated cardinality on a table with `rows` rows, clamped to [0, rows].
  double EstimateCardinality(const Query& query, size_t rows) const;

  // Estimated join result cardinality, clamped to [0, rows product].
  double EstimateJoinCardinality(const Schema& schema,
                                 const JoinQuery& query) const;
};

// Optional capability: estimators that learn from executed-query feedback
// (the src/feedback/ loop) additionally implement this interface. The truth
// worker dynamic_casts a served estimator to FeedbackSink and, when present,
// feeds it the exact selectivity of each answered query. Implementations
// must tolerate concurrent ObserveTruth / EstimateSelectivity calls.
class FeedbackSink {
 public:
  virtual ~FeedbackSink() = default;

  // One executed-query ground truth: `truth_selectivity` is the exact
  // selectivity of `query` over the data version the estimator currently
  // serves.
  virtual void ObserveTruth(const Query& query, double truth_selectivity) = 0;
};

// Sentinel q-error for undefined inputs (NaN or infinite cardinalities):
// the worst representable error, so aggregates surface the breakage instead
// of masking it.
inline constexpr double kInvalidQError =
    std::numeric_limits<double>::infinity();

// q-error of an estimate: max(est, act) / min(est, act) with both sides
// clamped to at least one tuple, as in the paper's released benchmark code.
// Negative inputs clamp to one tuple like zero does; a NaN or infinite input
// on either side returns kInvalidQError.
double QError(double estimated_cardinality, double actual_cardinality);

// q-errors of an estimator across a labelled workload, on a table with
// `rows` rows.
std::vector<double> EvaluateQErrors(const CardinalityEstimator& estimator,
                                    const Workload& workload, size_t rows);

}  // namespace arecel

#endif  // ARECEL_CORE_ESTIMATOR_H_
