#include "core/model_io.h"

#include <fstream>

namespace arecel {

namespace {
constexpr uint32_t kModelMagic = 0x41434d31;  // "ACM1".
constexpr uint32_t kVersion = 1;
}  // namespace

bool SupportsPersistence(const CardinalityEstimator& estimator) {
  // Counting probe: serializers walk their state but nothing is buffered,
  // so per-request capability checks (serve/model_manager.cc) don't pay a
  // full serialization's allocation and copy.
  ByteWriter probe = ByteWriter::Counting();
  return estimator.SerializeModel(&probe);
}

bool SerializeEstimatorBytes(const CardinalityEstimator& estimator,
                             std::string* bytes) {
  ByteWriter payload;
  if (!estimator.SerializeModel(&payload)) return false;

  ByteWriter file;
  file.U32(kModelMagic);
  file.U32(kVersion);
  file.Str(estimator.Name());
  file.Str(payload.buffer());
  *bytes = file.buffer();
  return true;
}

bool SaveEstimator(const CardinalityEstimator& estimator,
                   const std::string& path) {
  std::string bytes;
  if (!SerializeEstimatorBytes(estimator, &bytes)) return false;

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.good()) return false;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return out.good();
}

ModelLoadResult LoadEstimatorBytes(CardinalityEstimator* estimator,
                                   const std::string& bytes) {
  ModelLoadResult result;
  ByteReader file(bytes);
  uint32_t magic = 0, version = 0;
  std::string name, payload;
  if (!file.U32(&magic) || magic != kModelMagic) {
    result.kind = FailureKind::kCorruptModel;
    result.detail = "bad model magic";
    return result;
  }
  if (!file.U32(&version) || version != kVersion) {
    result.kind = FailureKind::kCorruptModel;
    result.detail = "unsupported model version " + std::to_string(version);
    return result;
  }
  if (!file.Str(&name) || !file.Str(&payload)) {
    result.kind = FailureKind::kCorruptModel;
    result.detail = "truncated model frame at byte " +
                    std::to_string(file.failure_position());
    return result;
  }
  if (name != estimator->Name()) {
    // A well-formed file for a different estimator: a wiring error, not
    // corruption — the instance was not touched.
    result.kind = FailureKind::kPersistenceFailure;
    result.detail = "estimator kind mismatch: file holds \"" + name +
                    "\", loading into \"" + estimator->Name() + "\"";
    return result;
  }

  ByteReader reader(payload);
  if (!estimator->DeserializeModel(&reader)) {
    // The instance may be partially deserialized — poisoned either way.
    result.kind = FailureKind::kCorruptModel;
    result.detail =
        reader.failed()
            ? "truncated model payload at byte " +
                  std::to_string(reader.failure_position()) + " of " +
                  std::to_string(payload.size())
            : "model payload failed validation";
    return result;
  }
  return result;
}

ModelLoadResult LoadEstimatorDetailed(CardinalityEstimator* estimator,
                                      const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    ModelLoadResult result;
    result.kind = FailureKind::kPersistenceFailure;
    result.detail = "cannot open \"" + path + "\"";
    return result;
  }
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  return LoadEstimatorBytes(estimator, contents);
}

bool LoadEstimator(CardinalityEstimator* estimator, const std::string& path) {
  return LoadEstimatorDetailed(estimator, path).ok();
}

}  // namespace arecel
