#include "core/model_io.h"

#include <fstream>

namespace arecel {

namespace {
constexpr uint32_t kModelMagic = 0x41434d31;  // "ACM1".
constexpr uint32_t kVersion = 1;
}  // namespace

bool SupportsPersistence(const CardinalityEstimator& estimator) {
  // Counting probe: serializers walk their state but nothing is buffered,
  // so per-request capability checks (serve/model_manager.cc) don't pay a
  // full serialization's allocation and copy.
  ByteWriter probe = ByteWriter::Counting();
  return estimator.SerializeModel(&probe);
}

bool SaveEstimator(const CardinalityEstimator& estimator,
                   const std::string& path) {
  ByteWriter payload;
  if (!estimator.SerializeModel(&payload)) return false;

  ByteWriter file;
  file.U32(kModelMagic);
  file.U32(kVersion);
  file.Str(estimator.Name());
  file.Str(payload.buffer());

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.good()) return false;
  out.write(file.buffer().data(),
            static_cast<std::streamsize>(file.buffer().size()));
  return out.good();
}

bool LoadEstimator(CardinalityEstimator* estimator, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return false;
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());

  ByteReader file(contents);
  uint32_t magic = 0, version = 0;
  std::string name, payload;
  if (!file.U32(&magic) || magic != kModelMagic) return false;
  if (!file.U32(&version) || version != kVersion) return false;
  if (!file.Str(&name) || name != estimator->Name()) return false;
  if (!file.Str(&payload)) return false;

  ByteReader reader(payload);
  return estimator->DeserializeModel(&reader);
}

}  // namespace arecel
