#ifndef ARECEL_BENCH_BENCH_COMMON_H_
#define ARECEL_BENCH_BENCH_COMMON_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/estimator.h"
#include "core/evaluator.h"
#include "data/table.h"
#include "robustness/fault_injector.h"
#include "robustness/journal.h"
#include "robustness/runner.h"
#include "workload/generator.h"

namespace arecel::bench {

// Shared plumbing for the experiment-driver binaries.
//
// Every bench is scaled down from the paper (datasets, query counts,
// epochs) so the full suite finishes on a CPU-only machine; set
// ARECEL_BENCH_SCALE (default 1.0) to scale dataset row counts, and
// ARECEL_BENCH_QUERIES (default below) to change workload sizes.
//
// Robustness knobs (see DESIGN.md §7): ARECEL_FAULT_INJECT schedules
// faults into the estimators a driver constructs; ARECEL_TRAIN_DEADLINE /
// ARECEL_ESTIMATE_DEADLINE / ARECEL_TRAIN_ATTEMPTS / ARECEL_FALLBACK tune
// the guarded execution; ARECEL_JOURNAL=0 disables resumable-sweep
// journaling, ARECEL_JOURNAL_DIR moves the journal files (default ".").

// Row-count multiplier from ARECEL_BENCH_SCALE.
double BenchScale();

// Number of test queries per dataset, from ARECEL_BENCH_QUERIES
// (default 600; paper uses 10K).
size_t BenchQueryCount();

// Training-workload size for query-driven methods (default 4x test size;
// the paper uses 100K).
size_t BenchTrainQueryCount();

// The four benchmark datasets at BenchScale().
std::vector<Table> LoadBenchmarkDatasets();

// Prints a standard experiment header with dataset sizes and knobs,
// including the robustness configuration (deadlines, fallback, fault plan,
// journal state) so every driver's output records how it was guarded.
void PrintHeader(const std::string& experiment,
                 const std::string& paper_reference);

// Prints the paper's qualitative expectation so EXPERIMENTS.md can record
// shape-vs-paper.
void PrintPaperExpectation(const std::string& text);

// Registry MakeEstimator wrapped with the ARECEL_FAULT_INJECT plan. Every
// driver constructs estimators through this so an injected hang / NaN /
// throw exercises the same code path in all 20 binaries.
std::unique_ptr<CardinalityEstimator> MakeBenchEstimator(
    const std::string& name);

// Fault-tolerant sweep driver: guarded execution + failure accounting +
// resumable journaling for one bench binary. Cells run under the watchdog;
// completed clean cells are journaled (keyed by a config fingerprint) so a
// killed or partially failed run resumes where it died, executing only the
// missing/failed cells. Failures are collected and reported at Finish() —
// the binary completes every remaining cell and only then exits non-zero.
class SweepContext {
 public:
  explicit SweepContext(const std::string& bench_name);

  // Full robust path for an (estimator, dataset) accuracy cell: journal
  // lookup, guarded train with retry + fallback, guarded estimate sweep.
  // A journal hit returns the cached report without running the cell.
  EstimatorReport EvaluateCell(const std::string& estimator_name,
                               const Table& table, const Workload& train,
                               const Workload& test, uint64_t seed = 42);

  // Generic guarded + journaled cell for drivers whose cells are not plain
  // EvaluateOnDataset sweeps. `body` runs under a single cell deadline
  // (train + estimate budgets combined) and returns the named metrics that
  // are journaled and handed back on resume. The guarded closure owns a
  // copy of `body`, so after a timeout the abandoned worker keeps running
  // against that copy — which is why the body lambda itself must capture
  // loop-scoped inputs by value (or via shared_ptr), never by reference;
  // by-reference captures are only safe for objects that live until
  // process exit (see CellGuard below).
  struct CellStatus {
    bool ok = false;
    bool from_journal = false;
    std::vector<std::pair<std::string, double>> metrics;
    std::string failure;  // taxonomy string when !ok.
  };
  CellStatus RunCell(
      const std::string& estimator_name, const std::string& cell_key,
      const std::function<std::vector<std::pair<std::string, double>>()>&
          body);

  // Formats a table row's status cell: "" for clean cells, otherwise the
  // failure chain, e.g. "FAILED kTrainTimeout; served by guarded(postgres)".
  static std::string StatusLabel(const EstimatorReport& report);

  bool any_failed() const { return !failed_cells_.empty(); }

  // Prints the failure summary (and the resume hint when cells failed),
  // deletes the journal when the whole sweep is clean, and returns the
  // process exit code (0 clean / 1 any cell failed — including a cell
  // whose journal append failed, accounted as kPersistenceFailure). When
  // an abandoned watchdog worker is still running, this does not return:
  // it flushes stdio and ends the process with the same exit code, because
  // running destructors under a live worker would be a use-after-free.
  int Finish();

  const robust::RobustOptions& options() const { return options_; }

 private:
  void NoteOutcome(const std::string& estimator, const std::string& cell,
                   bool ok, const std::string& failure);

  std::string bench_name_;
  robust::RobustOptions options_;
  std::vector<robust::FaultSpec> fault_plan_;
  robust::SweepJournal journal_;
  std::vector<std::string> failed_cells_;  // "estimator x cell: failure".
};

// Heavyweight cell inputs for the dynamic-environment drivers, bundled in
// one shared_ptr<DynamicInputs> so guarded bodies capture shared ownership
// by value: after a timeout the abandoned worker keeps the whole dataset
// alive instead of dangling into the driver's dataset loop. Drivers fill
// only the fields they use.
struct DynamicInputs {
  Table base;
  Table updated;
  Workload initial_train;
  Workload test;
};

// Guarded-cell tracker for drivers whose cells cannot be journaled —
// custom-option ablations and dynamic profiles that feed shared downstream
// math. Each cell runs under the combined train+estimate deadline; a
// failed cell prints a [robustness] FAILED line and the driver keeps
// going, exiting non-zero only after the sweep completes.
//
// Capture contract for bodies (the guard keeps the closure alive until the
// worker returns, so what the closure OWNS is safe): capture loop-scoped
// inputs by value or via shared_ptr (e.g. a DynamicInputs bundle); capture
// by reference only main-scope objects, which stay alive until process
// exit because Finish() ends the process without teardown while an
// abandoned worker is still running.
class CellGuard {
 public:
  CellGuard();

  // Runs `body` under the cell deadline; returns true when it succeeded.
  bool Run(const std::string& label, const std::function<void()>& body);

  bool any_failed() const { return !failed_.empty(); }

  // Prints the failure summary; returns the process exit code (0/1). Like
  // SweepContext::Finish, ends the process directly (same exit code,
  // stdio flushed) instead of returning when a worker is still abandoned.
  int Finish() const;

 private:
  double deadline_ = 0.0;
  std::vector<std::string> failed_;  // "label: failure".
};

}  // namespace arecel::bench

#endif  // ARECEL_BENCH_BENCH_COMMON_H_
