#ifndef ARECEL_BENCH_BENCH_COMMON_H_
#define ARECEL_BENCH_BENCH_COMMON_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "core/estimator.h"
#include "data/table.h"
#include "workload/generator.h"

namespace arecel::bench {

// Shared plumbing for the experiment-driver binaries.
//
// Every bench is scaled down from the paper (datasets, query counts,
// epochs) so the full suite finishes on a CPU-only machine; set
// ARECEL_BENCH_SCALE (default 1.0) to scale dataset row counts, and
// ARECEL_BENCH_QUERIES (default below) to change workload sizes.

// Row-count multiplier from ARECEL_BENCH_SCALE.
double BenchScale();

// Number of test queries per dataset, from ARECEL_BENCH_QUERIES
// (default 600; paper uses 10K).
size_t BenchQueryCount();

// Training-workload size for query-driven methods (default 4x test size;
// the paper uses 100K).
size_t BenchTrainQueryCount();

// The four benchmark datasets at BenchScale().
std::vector<Table> LoadBenchmarkDatasets();

// Prints a standard experiment header with dataset sizes and knobs.
void PrintHeader(const std::string& experiment,
                 const std::string& paper_reference);

// Prints the paper's qualitative expectation so EXPERIMENTS.md can record
// shape-vs-paper.
void PrintPaperExpectation(const std::string& text);

}  // namespace arecel::bench

#endif  // ARECEL_BENCH_BENCH_COMMON_H_
