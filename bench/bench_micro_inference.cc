// google-benchmark microbenchmark: per-query inference latency of every
// estimator, the quantity behind Figure 4's inference panel. Models are
// trained once on a small census-like table; the benchmark then measures
// EstimateSelectivity in isolation.

#include <memory>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/estimator.h"
#include "core/registry.h"
#include "data/datasets.h"
#include "workload/generator.h"

namespace {

using namespace arecel;

struct Fixture {
  Table table;
  Workload queries;
  std::vector<std::unique_ptr<CardinalityEstimator>> estimators;

  Fixture() {
    DatasetSpec spec = CensusSpec();
    spec.rows = 20000;
    table = GenerateDataset(spec, 1);
    queries = GenerateWorkload(table, 256, 2);
    const Workload train = GenerateWorkload(table, 1200, 3);
    TrainContext context;
    context.training_workload = &train;
    for (const std::string& name : AllEstimatorNames()) {
      auto estimator = bench::MakeBenchEstimator(name);
      estimator->Train(table, context);
      estimators.push_back(std::move(estimator));
    }
  }

  const CardinalityEstimator& Get(const std::string& name) const {
    for (const auto& estimator : estimators) {
      if (estimator->Name() == name) return *estimator;
    }
    std::abort();
  }
};

const Fixture& GetFixture() {
  static const Fixture* fixture = new Fixture();
  return *fixture;
}

void BM_Inference(benchmark::State& state, const std::string& name) {
  const Fixture& fixture = GetFixture();
  const CardinalityEstimator& estimator = fixture.Get(name);
  size_t i = 0;
  for (auto _ : state) {
    const double sel = estimator.EstimateSelectivity(
        fixture.queries.queries[i % fixture.queries.size()]);
    benchmark::DoNotOptimize(sel);
    ++i;
  }
}

const int kRegistered = [] {
  for (const std::string& name : AllEstimatorNames()) {
    benchmark::RegisterBenchmark(("inference/" + name).c_str(),
                                 [name](benchmark::State& state) {
                                   BM_Inference(state, name);
                                 });
  }
  return 0;
}();

}  // namespace

BENCHMARK_MAIN();
