// Reproduces Figure 7: Naru's trade-off between the number of updating
// epochs and accuracy on Census and Forest. "Stale" is the old model on the
// new workload; "Updated" is the refreshed model on the whole workload;
// "Dynamic" mixes them according to how much of the interval T the update
// consumed — more epochs improve "Updated" but push "Dynamic" back toward
// "Stale".

#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "core/dynamic.h"
#include "core/registry.h"
#include "data/datasets.h"
#include "estimators/learned/naru.h"
#include "robustness/fault_injector.h"
#include "util/ascii_table.h"
#include "util/stats.h"

int main() {
  using namespace arecel;
  bench::PrintHeader("Figure 7: Naru update-epochs vs accuracy trade-off",
                     "Figure 7 (Section 5.3)");

  bench::CellGuard guard;

  std::vector<DatasetSpec> specs = {CensusSpec(), ForestSpec()};
  for (DatasetSpec& spec : specs) {
    spec.rows = static_cast<size_t>(
        static_cast<double>(spec.rows) * bench::BenchScale());
    // Shared bundle captured by value in every guarded body: a timed-out
    // worker is abandoned and must not dangle into this dataset iteration.
    auto data = std::make_shared<bench::DynamicInputs>();
    data->base = GenerateDataset(spec, 2021);
    data->updated = AppendCorrelatedUpdate(data->base, 0.20, 99);
    data->test =
        GenerateWorkload(data->updated, bench::BenchQueryCount(), 2002);

    // T generous enough that every epoch count finishes (paper: 10 min on
    // Census, 100 min on Forest), scaled to this box.
    const double interval =
        static_cast<double>(data->updated.num_rows()) / 50000.0 * 40.0;
    std::printf("\n--- dataset %s (T = %.1fs) ---\n", spec.name.c_str(),
                interval);

    AsciiTable out({"epochs", "t_u (s)", "stale p99", "updated p99",
                    "dynamic p99"});
    for (int epochs : {1, 2, 4, 8}) {
      auto profile = std::make_shared<DynamicProfile>();
      const bool ok = guard.Run(
          "naru x " + spec.name + " x epochs=" + std::to_string(epochs),
          [profile, epochs, data] {
            // A fresh initial model per setting (updates mutate in place);
            // fewer initial epochs than the Table 4 profile keep the sweep
            // affordable.
            NaruEstimator::Options initial_options;
            initial_options.epochs = 10;
            auto naru = robust::WrapWithFaults(
                std::make_unique<NaruEstimator>(initial_options),
                robust::FaultPlanFromEnv());
            TrainContext train_context;
            naru->Train(data->base, train_context);

            DynamicOptions options;
            options.update_epochs = epochs;
            *profile = ProfileDynamicUpdate(*naru, data->updated,
                                            data->base.num_rows(),
                                            data->test, options);
          });
      if (ok) {
        out.AddRow({std::to_string(epochs),
                    FormatFixed(profile->update_seconds, 2),
                    FormatCompact(Percentile(profile->stale_errors, 99)),
                    FormatCompact(Percentile(profile->updated_errors, 99)),
                    FormatCompact(DynamicP99(*profile, interval))});
      } else {
        out.AddRow({std::to_string(epochs), "-", "-", "-", "FAILED"});
      }
    }
    std::printf("%s", out.ToString().c_str());
  }

  bench::PrintPaperExpectation(
      "\"Updated\" improves monotonically with more epochs while \"Dynamic\" "
      "is U-shaped on Forest: it first drops (better updated model) then "
      "rises (the longer update leaves more queries on the stale model).");
  return guard.Finish();
}
