// Join-estimator accuracy sweep over a correlated, skewed star schema
// (DESIGN.md §13): trains every join-capable estimator on a labelled join
// workload and scores q-errors against the hash-join ground truth — the
// multi-table version of the paper's static accuracy question, where the
// independence-assuming baseline ("postgres-join") must pay for the
// key-banded correlations while the learned (mscn-join) and correlated
// sampling (sampling-join) families see them in their training signal.
// Before any cell runs, the hash executor is differentially checked
// against the nested-loop oracle on a query subsample — a bench whose
// ground truth is wrong measures nothing. Cells run through SweepContext
// (guarded + journaled, estimators built through the fault-injection
// plan), so a killed run resumes at the first missing cell. Emits
// machine-readable BENCH_join.json (default at the repo root).
//
// Environment knobs (all optional):
//   ARECEL_JOIN_BENCH_FACT_ROWS  fact table rows            (default 30000)
//   ARECEL_JOIN_BENCH_DIMS      dimension tables            (default 3)
//   ARECEL_JOIN_BENCH_DIM_ROWS  rows per dimension          (default 128)
//   ARECEL_JOIN_BENCH_TRAIN     training join queries       (default 1200)
//   ARECEL_JOIN_BENCH_QUERIES   test join queries           (default 400)
//   ARECEL_JOIN_BENCH_EST       comma-separated estimators
//                               (default postgres-join,sampling-join,
//                                mscn-join)
//   ARECEL_JOIN_BENCH_OUT       output JSON path
//                               (default <repo>/BENCH_join.json)
//
//   --smoke                     tiny configuration for the CTest smoke run

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "core/evaluator.h"
#include "core/registry.h"
#include "data/schema.h"
#include "join/join_executor.h"
#include "util/stats.h"
#include "util/timer.h"
#include "workload/join_generator.h"

namespace {

using namespace arecel;

size_t EnvSize(const char* name, size_t fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback
                      : static_cast<size_t>(std::strtoull(v, nullptr, 10));
}

std::string EnvString(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : std::string(v);
}

std::vector<std::string> SplitCommas(const std::string& text) {
  std::vector<std::string> parts;
  size_t at = 0;
  while (at <= text.size()) {
    const size_t comma = text.find(',', at);
    const size_t end = comma == std::string::npos ? text.size() : comma;
    if (end > at) parts.push_back(text.substr(at, end - at));
    if (comma == std::string::npos) break;
    at = comma + 1;
  }
  return parts;
}

// Shared cell inputs (SweepContext capture contract: guarded bodies own
// shared ownership, so an abandoned worker never dangles into main).
struct JoinInputs {
  Schema schema;
  JoinWorkload train;
  std::vector<JoinQuery> test;
  std::vector<double> truth_selectivities;  // hash-join ground truth.
};

struct CellResult {
  std::string estimator;
  double p50 = 0.0;
  double p95 = 0.0;
  double worst = 0.0;
  double train_seconds = 0.0;
  double inference_ms = 0.0;  // per query.
  double size_mb = 0.0;
  bool from_journal = false;
  bool ok = false;
  std::string failure;
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;

  const size_t fact_rows =
      EnvSize("ARECEL_JOIN_BENCH_FACT_ROWS", smoke ? 2000 : 30000);
  const size_t dims = EnvSize("ARECEL_JOIN_BENCH_DIMS", smoke ? 2 : 3);
  const size_t dim_rows =
      EnvSize("ARECEL_JOIN_BENCH_DIM_ROWS", smoke ? 32 : 128);
  const size_t train_queries =
      EnvSize("ARECEL_JOIN_BENCH_TRAIN", smoke ? 120 : 1200);
  const size_t test_queries =
      EnvSize("ARECEL_JOIN_BENCH_QUERIES", smoke ? 40 : 400);
  const std::vector<std::string> estimators = SplitCommas(
      EnvString("ARECEL_JOIN_BENCH_EST",
                "postgres-join,sampling-join,mscn-join"));
  std::string out_path = ARECEL_REPO_ROOT "/BENCH_join.json";
  if (smoke) out_path = "BENCH_join_smoke.json";
  if (const char* env_out = std::getenv("ARECEL_JOIN_BENCH_OUT"))
    out_path = env_out;

  bench::PrintHeader("bench_join: multi-table join estimator accuracy",
                     "static star-join accuracy, Cartesian-product q-error");
  bench::PrintPaperExpectation(
      "independence-assuming estimation compounds its error per join edge "
      "on correlated schemas; join-aware learned and correlated-sampling "
      "estimators stay near the truth (the multi-join regime of the "
      "paper's follow-up benchmarks)");

  // Correlated + skewed star: dimension payloads band the key space and
  // FK fan-out is Zipf, so a dimension predicate selects a pk band whose
  // true fan-out is far from uniform — exactly where per-edge
  // 1/max(distinct) math goes wrong.
  StarSchemaOptions star;
  star.fact_rows = fact_rows;
  star.num_dimensions = static_cast<int>(dims);
  star.dim_rows = dim_rows;
  star.fk_skew = 1.2;
  star.correlation = 0.9;

  auto inputs = std::make_shared<JoinInputs>();
  inputs->schema = GenerateStarSchema(star, /*seed=*/71);
  inputs->train = GenerateJoinWorkload(inputs->schema, train_queries,
                                       /*seed=*/72);
  inputs->test = GenerateJoinQueries(inputs->schema, test_queries,
                                     /*seed=*/73);
  const join::JoinExecutor executor(inputs->schema);
  inputs->truth_selectivities = executor.Label(inputs->test);

  std::printf("star: fact=%zu dims=%zu x %zu rows, skew=%.1f corr=%.1f; "
              "train=%zu test=%zu\n",
              fact_rows, dims, dim_rows, star.fk_skew, star.correlation,
              train_queries, test_queries);

  // Ground-truth differential check: the hash executor vs the nested-loop
  // oracle, bit-identical counts on a subsample (the oracle is quadratic,
  // so the subsample keeps the check affordable at full scale).
  {
    const size_t check = std::min<size_t>(inputs->test.size(), smoke ? 10 : 25);
    Timer timer;
    for (size_t i = 0; i < check; ++i) {
      const size_t hash_count = executor.Count(inputs->test[i]);
      const size_t naive_count =
          join::ExecuteJoinCountNaive(inputs->schema, inputs->test[i]);
      if (hash_count != naive_count) {
        std::fprintf(stderr,
                     "GROUND TRUTH MISMATCH on query %zu: hash=%zu naive=%zu\n",
                     i, hash_count, naive_count);
        return 1;
      }
    }
    std::printf("oracle check: hash == nested-loop on %zu queries "
                "(%.2fs)\n\n",
                check, timer.ElapsedSeconds());
  }

  bench::SweepContext sweep("bench_join");
  std::vector<CellResult> results;
  std::printf("%16s %9s %9s %10s %9s %12s %9s %s\n", "estimator", "p50",
              "p95", "worst", "train_s", "est_ms/query", "size_mb", "status");
  for (const std::string& name : estimators) {
    CellResult result;
    result.estimator = name;
    auto status = sweep.RunCell(name, "star", [inputs, name] {
      auto estimator = bench::MakeBenchEstimator(name);
      if (!estimator->SupportsJoins())
        throw std::runtime_error(name + " does not support joins");

      JoinTrainContext context;
      context.training_workload = &inputs->train;
      context.seed = 42;
      Timer train_timer;
      estimator->TrainJoin(inputs->schema, context);
      const double train_seconds = train_timer.ElapsedSeconds();

      std::vector<double> qerrors;
      qerrors.reserve(inputs->test.size());
      Timer inference_timer;
      for (size_t i = 0; i < inputs->test.size(); ++i) {
        const JoinQuery& query = inputs->test[i];
        const double rows_product =
            join::JoinExecutor::RowsProduct(inputs->schema, query);
        const double truth =
            inputs->truth_selectivities[i] * rows_product;
        bool invalid = false;
        const double qerr = ScoreEstimate(
            estimator->EstimateJoinSelectivity(query),
            static_cast<size_t>(rows_product), truth, &invalid);
        if (invalid)
          throw std::runtime_error("invalid estimate from " + name);
        qerrors.push_back(qerr);
      }
      const double inference_ms =
          inputs->test.empty()
              ? 0.0
              : inference_timer.ElapsedMillis() /
                    static_cast<double>(inputs->test.size());
      return std::vector<std::pair<std::string, double>>{
          {"p50", Percentile(qerrors, 50.0)},
          {"p95", Percentile(qerrors, 95.0)},
          {"worst", Percentile(qerrors, 100.0)},
          {"train_seconds", train_seconds},
          {"inference_ms", inference_ms},
          {"size_mb", static_cast<double>(estimator->SizeBytes()) / 1e6}};
    });
    result.ok = status.ok;
    result.from_journal = status.from_journal;
    result.failure = status.failure;
    for (const auto& [metric, value] : status.metrics) {
      if (metric == "p50") result.p50 = value;
      if (metric == "p95") result.p95 = value;
      if (metric == "worst") result.worst = value;
      if (metric == "train_seconds") result.train_seconds = value;
      if (metric == "inference_ms") result.inference_ms = value;
      if (metric == "size_mb") result.size_mb = value;
    }
    std::printf("%16s %9.3f %9.3f %10.3f %9.2f %12.4f %9.3f %s\n",
                name.c_str(), result.p50, result.p95, result.worst,
                result.train_seconds, result.inference_ms, result.size_mb,
                result.from_journal
                    ? "journal"
                    : (result.ok ? "" : result.failure.c_str()));
    results.push_back(result);
  }

  // Headline: the learned join estimator vs the independence baseline —
  // the bench's acceptance comparison.
  const CellResult* mscn = nullptr;
  const CellResult* independence = nullptr;
  for (const CellResult& result : results) {
    if (result.ok && result.estimator == "mscn-join") mscn = &result;
    if (result.ok && result.estimator == "postgres-join")
      independence = &result;
  }
  if (mscn != nullptr && independence != nullptr)
    std::printf("\nheadline: mscn-join median q-error %.3f vs postgres-join "
                "%.3f on the correlated star (%.2fx %s)\n",
                mscn->p50, independence->p50,
                mscn->p50 > 0 ? independence->p50 / mscn->p50 : 0.0,
                mscn->p50 <= independence->p50 ? "better" : "WORSE");

  // ---- machine-readable artifact ----------------------------------------
  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"bench_join\",\n");
  std::fprintf(out,
               "  \"star\": {\"fact_rows\": %zu, \"dims\": %zu, "
               "\"dim_rows\": %zu, \"fk_skew\": %.2f, \"correlation\": "
               "%.2f},\n",
               fact_rows, dims, dim_rows, star.fk_skew, star.correlation);
  std::fprintf(out, "  \"train_queries\": %zu,\n  \"test_queries\": %zu,\n",
               train_queries, test_queries);
  std::fprintf(out, "  \"cells\": [");
  for (size_t i = 0; i < results.size(); ++i) {
    const CellResult& r = results[i];
    std::fprintf(out,
                 "%s\n    {\"estimator\": \"%s\", \"p50\": %.6f, "
                 "\"p95\": %.6f, \"worst\": %.6f, \"train_seconds\": %.4f, "
                 "\"inference_ms\": %.6f, \"size_mb\": %.4f, \"ok\": %s}",
                 i == 0 ? "" : ",", r.estimator.c_str(), r.p50, r.p95,
                 r.worst, r.train_seconds, r.inference_ms, r.size_mb,
                 r.ok ? "true" : "false");
  }
  std::fprintf(out, "\n  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());

  return sweep.Finish();
}
