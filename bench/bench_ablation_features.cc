// Ablation: the input-enrichment design choices the paper highlights.
//  * MSCN's materialized-sample bitmap ("this enrichment has been proved to
//    make obvious positive impact", §2.3) — trained with and without it.
//  * LW-XGB/NN's CE features (AVI/MinSel/EBO) vs range features alone.

#include <cstdio>
#include <functional>
#include <memory>

#include "bench_common.h"
#include "core/estimator.h"
#include "data/datasets.h"
#include "estimators/learned/lw_nn.h"
#include "estimators/learned/lw_xgb.h"
#include "estimators/learned/mscn.h"
#include "robustness/fault_injector.h"
#include "util/ascii_table.h"
#include "util/stats.h"
#include "workload/generator.h"

int main() {
  using namespace arecel;
  bench::PrintHeader("Ablation: sample bitmap (MSCN) and CE features (LW)",
                     "design choices discussed in Section 2.3");

  DatasetSpec spec = CensusSpec();
  spec.rows = static_cast<size_t>(
      static_cast<double>(spec.rows) * bench::BenchScale());
  const Table table = GenerateDataset(spec, 2021);
  const Workload train =
      GenerateWorkload(table, bench::BenchTrainQueryCount(), 1001);
  const Workload test =
      GenerateWorkload(table, bench::BenchQueryCount(), 2002);
  TrainContext context;
  context.training_workload = &train;

  bench::CellGuard guard;
  AsciiTable out({"variant", "50th", "95th", "99th", "max"});
  auto add =
      [&](const std::string& label,
          const std::function<std::unique_ptr<CardinalityEstimator>()>&
              make) {
        auto summary = std::make_shared<QuantileSummary>();
        const bool ok =
            guard.Run(label, [summary, make, &table, &test, &context] {
              auto estimator =
                  robust::WrapWithFaults(make(), robust::FaultPlanFromEnv());
              estimator->Train(table, context);
              *summary = Summarize(
                  EvaluateQErrors(*estimator, test, table.num_rows()));
            });
        if (ok) {
          out.AddRow({label, FormatCompact(summary->p50),
                      FormatCompact(summary->p95), FormatCompact(summary->p99),
                      FormatCompact(summary->max)});
        } else {
          out.AddRow({label, "-", "-", "-", "FAILED"});
        }
      };

  add("mscn + sample bitmap", [] { return std::make_unique<MscnEstimator>(); });
  add("mscn - sample bitmap", [] {
    MscnEstimator::Options options;
    options.use_sample_bitmap = false;
    return std::make_unique<MscnEstimator>(options);
  });
  add("lw-xgb + CE features",
      [] { return std::make_unique<LwXgbEstimator>(); });
  add("lw-xgb - CE features", [] {
    LwXgbEstimator::Options options;
    options.include_ce_features = false;
    return std::make_unique<LwXgbEstimator>(options);
  });
  add("lw-nn + CE features", [] { return std::make_unique<LwNnEstimator>(); });
  add("lw-nn - CE features", [] {
    LwNnEstimator::Options options;
    options.include_ce_features = false;
    return std::make_unique<LwNnEstimator>(options);
  });
  std::printf("%s", out.ToString().c_str());

  bench::PrintPaperExpectation(
      "Removing MSCN's bitmap and the LW methods' CE features should hurt "
      "mid-to-tail quantiles noticeably: both enrichments inject cheap "
      "data statistics the bare query featurization lacks.");
  return guard.Finish();
}
