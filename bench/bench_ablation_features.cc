// Ablation: the input-enrichment design choices the paper highlights.
//  * MSCN's materialized-sample bitmap ("this enrichment has been proved to
//    make obvious positive impact", §2.3) — trained with and without it.
//  * LW-XGB/NN's CE features (AVI/MinSel/EBO) vs range features alone.

#include <cstdio>

#include "bench_common.h"
#include "core/estimator.h"
#include "data/datasets.h"
#include "estimators/learned/lw_nn.h"
#include "estimators/learned/lw_xgb.h"
#include "estimators/learned/mscn.h"
#include "util/ascii_table.h"
#include "util/stats.h"
#include "workload/generator.h"

int main() {
  using namespace arecel;
  bench::PrintHeader("Ablation: sample bitmap (MSCN) and CE features (LW)",
                     "design choices discussed in Section 2.3");

  DatasetSpec spec = CensusSpec();
  spec.rows = static_cast<size_t>(
      static_cast<double>(spec.rows) * bench::BenchScale());
  const Table table = GenerateDataset(spec, 2021);
  const Workload train =
      GenerateWorkload(table, bench::BenchTrainQueryCount(), 1001);
  const Workload test =
      GenerateWorkload(table, bench::BenchQueryCount(), 2002);
  TrainContext context;
  context.training_workload = &train;

  AsciiTable out({"variant", "50th", "95th", "99th", "max"});
  auto add = [&](const std::string& label, CardinalityEstimator& estimator) {
    estimator.Train(table, context);
    const QuantileSummary s =
        Summarize(EvaluateQErrors(estimator, test, table.num_rows()));
    out.AddRow({label, FormatCompact(s.p50), FormatCompact(s.p95),
                FormatCompact(s.p99), FormatCompact(s.max)});
  };

  {
    MscnEstimator with_bitmap;
    add("mscn + sample bitmap", with_bitmap);
    MscnEstimator::Options options;
    options.use_sample_bitmap = false;
    MscnEstimator without_bitmap(options);
    add("mscn - sample bitmap", without_bitmap);
  }
  {
    LwXgbEstimator with_ce;
    add("lw-xgb + CE features", with_ce);
    LwXgbEstimator::Options options;
    options.include_ce_features = false;
    LwXgbEstimator without_ce(options);
    add("lw-xgb - CE features", without_ce);
  }
  {
    LwNnEstimator with_ce;
    add("lw-nn + CE features", with_ce);
    LwNnEstimator::Options options;
    options.include_ce_features = false;
    LwNnEstimator without_ce(options);
    add("lw-nn - CE features", without_ce);
  }
  std::printf("%s", out.ToString().c_str());

  bench::PrintPaperExpectation(
      "Removing MSCN's bitmap and the LW methods' CE features should hurt "
      "mid-to-tail quantiles noticeably: both enrichments inject cheap "
      "data statistics the bare query featurization lacks.");
  return 0;
}
