// Reproduces Figure 3: distribution of workload selectivity produced by the
// unified generator on each dataset, rendered as a log-scale histogram.

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "util/ascii_table.h"
#include "workload/generator.h"

int main() {
  using namespace arecel;
  bench::PrintHeader("Figure 3: distribution of workload selectivity",
                     "Figure 3 (Section 3)");

  const std::vector<std::string> buckets = {
      "=0", "<1e-5", "<1e-4", "<1e-3", "<1e-2", "<1e-1", "<0.5", "<=1"};
  AsciiTable out({"dataset", "=0", "<1e-5", "<1e-4", "<1e-3", "<1e-2",
                  "<1e-1", "<0.5", "<=1"});
  for (const Table& table : bench::LoadBenchmarkDatasets()) {
    const Workload workload =
        GenerateWorkload(table, bench::BenchQueryCount(), 77);
    std::vector<int> counts(buckets.size(), 0);
    for (double s : workload.selectivities) {
      size_t b;
      if (s == 0) {
        b = 0;
      } else if (s < 1e-5) {
        b = 1;
      } else if (s < 1e-4) {
        b = 2;
      } else if (s < 1e-3) {
        b = 3;
      } else if (s < 1e-2) {
        b = 4;
      } else if (s < 1e-1) {
        b = 5;
      } else if (s < 0.5) {
        b = 6;
      } else {
        b = 7;
      }
      ++counts[b];
    }
    std::vector<std::string> row{table.name()};
    for (int c : counts)
      row.push_back(FormatFixed(
          100.0 * c / static_cast<double>(workload.size()), 1) + "%");
    out.AddRow(row);
  }
  std::printf("%s", out.ToString().c_str());

  bench::PrintPaperExpectation(
      "A broad spectrum: mass spread across many orders of magnitude of "
      "selectivity on every dataset, with a visible spike of empty/near-"
      "empty results from OOD centers.");
  return 0;
}
