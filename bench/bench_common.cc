#include "bench_common.h"

#include <cstdio>
#include <cstdlib>

#include "data/datasets.h"

namespace arecel::bench {

namespace {

double EnvDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  return std::atof(v);
}

}  // namespace

double BenchScale() { return EnvDouble("ARECEL_BENCH_SCALE", 0.5); }

size_t BenchQueryCount() {
  return static_cast<size_t>(EnvDouble("ARECEL_BENCH_QUERIES", 500));
}

size_t BenchTrainQueryCount() { return BenchQueryCount() * 4; }

std::vector<Table> LoadBenchmarkDatasets() {
  return BenchmarkDatasets(BenchScale(), /*seed=*/2021);
}

void PrintHeader(const std::string& experiment,
                 const std::string& paper_reference) {
  std::printf("==============================================================\n");
  std::printf("%s  (reproduces %s of VLDB'21 \"Are We Ready For Learned\n"
              "Cardinality Estimation?\"; synthetic stand-in datasets,\n"
              "scale=%.2f, %zu test queries)\n",
              experiment.c_str(), paper_reference.c_str(), BenchScale(),
              BenchQueryCount());
  std::printf("==============================================================\n");
}

void PrintPaperExpectation(const std::string& text) {
  std::printf("\n[paper expectation] %s\n", text.c_str());
}

}  // namespace arecel::bench
