#include "bench_common.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "core/registry.h"
#include "data/datasets.h"
#include "robustness/guard.h"

namespace arecel::bench {

namespace {

double EnvDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  return std::atof(v);
}

// Called on the way out of a driver: if any watchdog worker was abandoned
// and is still running, returning through main would destroy the driver's
// state (tables, workloads, AsciiTables the worker may still reference)
// under a live thread. End the process without teardown instead — the exit
// code is unchanged, stdio is flushed, and the journal is already durable
// (it flushes per append).
void ExitNowIfWorkersAbandoned(int exit_code) {
  const int abandoned = robust::AbandonedWorkerCount();
  if (abandoned == 0) return;
  std::printf("[robustness] %d abandoned watchdog worker(s) still running; "
              "exiting without teardown\n",
              abandoned);
  std::fflush(stdout);
  std::fflush(stderr);
  std::_Exit(exit_code);
}

bool JournalingEnabled() {
  const char* v = std::getenv("ARECEL_JOURNAL");
  return v == nullptr || std::string(v) != "0";
}

std::string JournalPath(const std::string& bench_name) {
  if (!JournalingEnabled()) return "";
  const char* dir = std::getenv("ARECEL_JOURNAL_DIR");
  return std::string(dir == nullptr ? "." : dir) + "/" + bench_name +
         ".journal.jsonl";
}

// Journal metric names for EvaluateCell reports (format version bumps the
// fingerprint, invalidating journals written by an older layout).
constexpr char kJournalVersion[] = "journal-v1";

std::vector<std::pair<std::string, double>> ReportMetrics(
    const EstimatorReport& report) {
  return {{"p50", report.qerror.p50},
          {"p95", report.qerror.p95},
          {"p99", report.qerror.p99},
          {"max", report.qerror.max},
          {"train_s", report.train_seconds},
          {"infer_ms", report.avg_inference_ms},
          {"model_bytes", static_cast<double>(report.model_size_bytes)}};
}

}  // namespace

double BenchScale() { return EnvDouble("ARECEL_BENCH_SCALE", 0.5); }

size_t BenchQueryCount() {
  return static_cast<size_t>(EnvDouble("ARECEL_BENCH_QUERIES", 500));
}

size_t BenchTrainQueryCount() { return BenchQueryCount() * 4; }

std::vector<Table> LoadBenchmarkDatasets() {
  return BenchmarkDatasets(BenchScale(), /*seed=*/2021);
}

void PrintHeader(const std::string& experiment,
                 const std::string& paper_reference) {
  std::printf("==============================================================\n");
  std::printf("%s  (reproduces %s of VLDB'21 \"Are We Ready For Learned\n"
              "Cardinality Estimation?\"; synthetic stand-in datasets,\n"
              "scale=%.2f, %zu test queries)\n",
              experiment.c_str(), paper_reference.c_str(), BenchScale(),
              BenchQueryCount());
  const robust::RobustOptions options = robust::RobustOptionsFromEnv();
  const char* faults = std::getenv("ARECEL_FAULT_INJECT");
  std::printf("[robustness] train deadline %.0fs x%d attempts, estimate "
              "deadline %.0fs, fallback %s, journal %s%s%s\n",
              options.train_deadline_seconds, options.max_train_attempts,
              options.estimate_deadline_seconds,
              options.fallback.empty() ? "none" : options.fallback.c_str(),
              JournalingEnabled() ? "on" : "off",
              faults != nullptr && faults[0] != '\0' ? ", FAULT PLAN: " : "",
              faults != nullptr ? faults : "");
  std::printf("==============================================================\n");
}

void PrintPaperExpectation(const std::string& text) {
  std::printf("\n[paper expectation] %s\n", text.c_str());
}

std::unique_ptr<CardinalityEstimator> MakeBenchEstimator(
    const std::string& name) {
  return robust::WrapWithFaults(MakeEstimator(name),
                                robust::FaultPlanFromEnv());
}

SweepContext::SweepContext(const std::string& bench_name)
    : bench_name_(bench_name),
      options_(robust::RobustOptionsFromEnv()),
      fault_plan_(robust::FaultPlanFromEnv()),
      journal_(JournalPath(bench_name),
               robust::FingerprintConfig(
                   {kJournalVersion, bench_name,
                    std::to_string(BenchScale()),
                    std::to_string(BenchQueryCount())})) {
  if (journal_.resumed_cells() > 0) {
    std::printf("[resume] %s: %zu completed cell(s) loaded from %s; only "
                "missing or failed cells will run\n",
                bench_name_.c_str(), journal_.resumed_cells(),
                journal_.path().c_str());
  }
}

EstimatorReport SweepContext::EvaluateCell(const std::string& estimator_name,
                                           const Table& table,
                                           const Workload& train,
                                           const Workload& test,
                                           uint64_t seed) {
  if (const robust::JournalRecord* cached =
          journal_.Find(estimator_name, table.name())) {
    EstimatorReport report;
    report.estimator = estimator_name;
    report.dataset = table.name();
    report.served_by = estimator_name;
    report.qerror = {cached->Metric("p50"), cached->Metric("p95"),
                     cached->Metric("p99"), cached->Metric("max")};
    report.train_seconds = cached->Metric("train_s");
    report.avg_inference_ms = cached->Metric("infer_ms");
    report.model_size_bytes =
        static_cast<size_t>(cached->Metric("model_bytes"));
    return report;
  }

  const EstimatorReport report = robust::EvaluateOnDatasetRobust(
      estimator_name,
      [this, &estimator_name] {
        return robust::WrapWithFaults(MakeEstimator(estimator_name),
                                      fault_plan_);
      },
      table, train, test, options_, seed);

  if (report.ok() &&
      !journal_.Append(
          {estimator_name, table.name(), ReportMetrics(report)})) {
    // Accounted, not just printed: a refused or failed append means this
    // run's resume state is lost, so the sweep must exit non-zero (and the
    // cell, still missing from the journal, re-runs on the next attempt).
    std::fprintf(stderr, "[journal] append to %s failed (%s)\n",
                 journal_.path().c_str(),
                 FailureKindName(FailureKind::kPersistenceFailure));
    NoteOutcome(estimator_name, table.name(), false,
                std::string("FAILED ") +
                    FailureKindName(FailureKind::kPersistenceFailure));
  }
  NoteOutcome(estimator_name, table.name(), report.ok(),
              StatusLabel(report));
  return report;
}

SweepContext::CellStatus SweepContext::RunCell(
    const std::string& estimator_name, const std::string& cell_key,
    const std::function<std::vector<std::pair<std::string, double>>()>&
        body) {
  CellStatus status;
  if (const robust::JournalRecord* cached =
          journal_.Find(estimator_name, cell_key)) {
    status.ok = true;
    status.from_journal = true;
    status.metrics = cached->metrics;
    return status;
  }

  // One deadline for the whole cell: its body typically trains and then
  // probes, so it gets both stage budgets.
  const double deadline =
      options_.train_deadline_seconds <= 0 ||
              options_.estimate_deadline_seconds <= 0
          ? 0.0
          : options_.train_deadline_seconds +
                options_.estimate_deadline_seconds;
  auto result =
      std::make_shared<std::vector<std::pair<std::string, double>>>();
  // The closure owns a COPY of `body`: the caller's std::function is a
  // call-site temporary that dies when RunCell returns, but after a
  // timeout the abandoned worker is still executing inside it. (The copied
  // lambda's own captures are the driver's responsibility — see the
  // CellGuard contract in bench_common.h.)
  const robust::GuardResult outcome = robust::RunGuarded(
      [result, body] { *result = body(); }, deadline,
      {FailureKind::kCellTimeout, FailureKind::kCellThrew,
       FailureKind::kCellThrew},
      nullptr, result);

  if (outcome.ok()) {
    status.ok = true;
    status.metrics = *result;
    if (!journal_.Append({estimator_name, cell_key, status.metrics})) {
      std::fprintf(stderr, "[journal] append to %s failed (%s)\n",
                   journal_.path().c_str(),
                   FailureKindName(FailureKind::kPersistenceFailure));
      NoteOutcome(estimator_name, cell_key, false,
                  std::string("FAILED ") +
                      FailureKindName(FailureKind::kPersistenceFailure));
    }
  } else {
    status.failure = std::string(FailureKindName(outcome.kind)) +
                     (outcome.detail.empty() ? "" : ": " + outcome.detail);
  }
  NoteOutcome(estimator_name, cell_key, status.ok, status.failure);
  return status;
}

std::string SweepContext::StatusLabel(const EstimatorReport& report) {
  if (report.ok()) return "";
  std::string label = "FAILED";
  for (const FailureRecord& failure : report.failures)
    label += std::string(" ") + FailureKindName(failure.kind);
  if (!report.served_by.empty() && report.served_by != report.estimator)
    label += "; served by " + report.served_by;
  return label;
}

void SweepContext::NoteOutcome(const std::string& estimator,
                               const std::string& cell, bool ok,
                               const std::string& failure) {
  if (ok) return;
  failed_cells_.push_back(estimator + " x " + cell + ": " +
                          (failure.empty() ? "FAILED" : failure));
}

CellGuard::CellGuard() {
  const robust::RobustOptions options = robust::RobustOptionsFromEnv();
  // One deadline per cell: bodies typically train and then probe, so they
  // get both stage budgets; either knob at 0 disables the watchdog.
  deadline_ = options.train_deadline_seconds <= 0 ||
                      options.estimate_deadline_seconds <= 0
                  ? 0.0
                  : options.train_deadline_seconds +
                        options.estimate_deadline_seconds;
}

bool CellGuard::Run(const std::string& label,
                    const std::function<void()>& body) {
  const robust::GuardResult outcome = robust::RunGuarded(
      body, deadline_,
      {FailureKind::kCellTimeout, FailureKind::kCellThrew,
       FailureKind::kCellThrew});
  if (outcome.ok()) return true;
  const std::string failure =
      std::string(FailureKindName(outcome.kind)) +
      (outcome.detail.empty() ? "" : " (" + outcome.detail + ")");
  std::printf("[robustness] %s FAILED %s\n", label.c_str(), failure.c_str());
  failed_.push_back(label + ": " + failure);
  return false;
}

int CellGuard::Finish() const {
  if (failed_.empty()) {
    ExitNowIfWorkersAbandoned(0);
    return 0;
  }
  std::printf("\n[robustness] %zu cell(s) FAILED:\n", failed_.size());
  for (const std::string& cell : failed_)
    std::printf("  %s\n", cell.c_str());
  ExitNowIfWorkersAbandoned(1);
  return 1;
}

int SweepContext::Finish() {
  if (failed_cells_.empty()) {
    // Clean sweep: nothing to resume. Next run starts fresh. (A clean sweep
    // can still have abandoned workers only when a timed-out attempt was
    // retried successfully — teardown is unsafe all the same.)
    journal_.RemoveFile();
    ExitNowIfWorkersAbandoned(0);
    return 0;
  }
  std::printf("\n[robustness] %zu cell(s) FAILED:\n", failed_cells_.size());
  for (const std::string& cell : failed_cells_)
    std::printf("  %s\n", cell.c_str());
  if (journal_.enabled()) {
    std::printf("[robustness] completed cells are journaled in %s; rerun "
                "this binary to execute only the failed cells\n",
                journal_.path().c_str());
  }
  ExitNowIfWorkersAbandoned(1);
  return 1;
}

}  // namespace arecel::bench
