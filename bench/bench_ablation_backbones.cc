// Ablation: the autoregressive design space around Naru.
//  * Backbone: ResMADE (the paper's pick) vs a decoder-only Transformer —
//    §2.4 names both as candidate building blocks.
//  * Inference: Naru's progressive sampling vs DQM-D's VEGAS-style
//    multi-stage importance sampling over the same model family — the
//    paper excludes DQM-D because "its data-driven model has a similar
//    performance with Naru"; this bench checks that claim.
//  * Bayes: exact tree message passing vs the reference implementation's
//    progressive sampling (same fitted model, different inference).

#include <cstdio>
#include <functional>
#include <memory>

#include "bench_common.h"
#include "core/estimator.h"
#include "data/datasets.h"
#include "estimators/learned/dqm.h"
#include "estimators/learned/naru.h"
#include "estimators/traditional/bayes.h"
#include "robustness/fault_injector.h"
#include "util/ascii_table.h"
#include "util/stats.h"
#include "util/timer.h"
#include "workload/generator.h"

int main() {
  using namespace arecel;
  bench::PrintHeader("Ablation: autoregressive backbones and inference",
                     "design space of Sections 2.4 / 4.1");

  DatasetSpec spec = CensusSpec();
  spec.rows = static_cast<size_t>(
      static_cast<double>(spec.rows) * bench::BenchScale());
  const Table table = GenerateDataset(spec, 2021);
  const Workload test =
      GenerateWorkload(table, bench::BenchQueryCount(), 2002);

  bench::CellGuard guard;
  AsciiTable out({"estimator", "train s", "ms/query", "50th", "95th", "99th",
                  "max"});
  auto add =
      [&](const std::string& label,
          const std::function<std::unique_ptr<CardinalityEstimator>()>&
              make) {
        struct Cell {
          double train_s = 0.0;
          double ms = 0.0;
          QuantileSummary s;
        };
        auto cell = std::make_shared<Cell>();
        const bool ok = guard.Run(label, [cell, make, &table, &test] {
          auto estimator =
              robust::WrapWithFaults(make(), robust::FaultPlanFromEnv());
          Timer train_timer;
          estimator->Train(table, {});
          cell->train_s = train_timer.ElapsedSeconds();
          Timer inference_timer;
          cell->s =
              Summarize(EvaluateQErrors(*estimator, test, table.num_rows()));
          cell->ms = inference_timer.ElapsedMillis() /
                     static_cast<double>(test.size());
        });
        if (ok) {
          out.AddRow({label, FormatFixed(cell->train_s, 1),
                      FormatFixed(cell->ms, 2), FormatCompact(cell->s.p50),
                      FormatCompact(cell->s.p95), FormatCompact(cell->s.p99),
                      FormatCompact(cell->s.max)});
        } else {
          out.AddRow({label, "-", "-", "-", "-", "-", "FAILED"});
        }
      };

  // ResMADE backbone, progressive sampling.
  add("naru/resmade", [] { return std::make_unique<NaruEstimator>(); });
  add("naru/transformer", [] {
    NaruEstimator::Options options;
    options.backbone = NaruEstimator::Backbone::kTransformer;
    options.epochs = 8;  // transformer steps cost far more per epoch.
    return std::make_unique<NaruEstimator>(options);
  });
  // Same ResMADE family, VEGAS inference.
  add("dqm-d/vegas", [] { return std::make_unique<DqmDEstimator>(); });
  // Exact message passing.
  add("bayes/exact", [] { return std::make_unique<BayesEstimator>(); });
  add("bayes/sampled", [] {
    BayesEstimator::Options options;
    options.inference = BayesEstimator::Inference::kProgressiveSampling;
    return std::make_unique<BayesEstimator>(options);
  });
  std::printf("%s", out.ToString().c_str());

  bench::PrintPaperExpectation(
      "naru/resmade and dqm-d should land in the same accuracy class "
      "(the paper's reason for excluding DQM-D); the transformer backbone "
      "is competitive but costlier to train at equal budget. Sampled Bayes "
      "trades the exact variant's determinism for sampling noise in the "
      "tail, mirroring the reference implementation.");
  return guard.Finish();
}
