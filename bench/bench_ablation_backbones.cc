// Ablation: the autoregressive design space around Naru.
//  * Backbone: ResMADE (the paper's pick) vs a decoder-only Transformer —
//    §2.4 names both as candidate building blocks.
//  * Inference: Naru's progressive sampling vs DQM-D's VEGAS-style
//    multi-stage importance sampling over the same model family — the
//    paper excludes DQM-D because "its data-driven model has a similar
//    performance with Naru"; this bench checks that claim.
//  * Bayes: exact tree message passing vs the reference implementation's
//    progressive sampling (same fitted model, different inference).

#include <cstdio>

#include "bench_common.h"
#include "core/estimator.h"
#include "data/datasets.h"
#include "estimators/learned/dqm.h"
#include "estimators/learned/naru.h"
#include "estimators/traditional/bayes.h"
#include "util/ascii_table.h"
#include "util/stats.h"
#include "util/timer.h"
#include "workload/generator.h"

int main() {
  using namespace arecel;
  bench::PrintHeader("Ablation: autoregressive backbones and inference",
                     "design space of Sections 2.4 / 4.1");

  DatasetSpec spec = CensusSpec();
  spec.rows = static_cast<size_t>(
      static_cast<double>(spec.rows) * bench::BenchScale());
  const Table table = GenerateDataset(spec, 2021);
  const Workload test =
      GenerateWorkload(table, bench::BenchQueryCount(), 2002);

  AsciiTable out({"estimator", "train s", "ms/query", "50th", "95th", "99th",
                  "max"});
  auto add = [&](const std::string& label, CardinalityEstimator& estimator) {
    Timer train_timer;
    estimator.Train(table, {});
    const double train_seconds = train_timer.ElapsedSeconds();
    Timer inference_timer;
    const QuantileSummary s =
        Summarize(EvaluateQErrors(estimator, test, table.num_rows()));
    const double ms =
        inference_timer.ElapsedMillis() / static_cast<double>(test.size());
    out.AddRow({label, FormatFixed(train_seconds, 1), FormatFixed(ms, 2),
                FormatCompact(s.p50), FormatCompact(s.p95),
                FormatCompact(s.p99), FormatCompact(s.max)});
  };

  {
    NaruEstimator naru;  // ResMADE backbone, progressive sampling.
    add("naru/resmade", naru);
  }
  {
    NaruEstimator::Options options;
    options.backbone = NaruEstimator::Backbone::kTransformer;
    options.epochs = 8;  // transformer steps cost far more per epoch.
    NaruEstimator naru(options);
    add("naru/transformer", naru);
  }
  {
    DqmDEstimator dqm;  // same ResMADE family, VEGAS inference.
    add("dqm-d/vegas", dqm);
  }
  {
    BayesEstimator bayes;  // exact message passing.
    add("bayes/exact", bayes);
  }
  {
    BayesEstimator::Options options;
    options.inference = BayesEstimator::Inference::kProgressiveSampling;
    BayesEstimator bayes(options);
    add("bayes/sampled", bayes);
  }
  std::printf("%s", out.ToString().c_str());

  bench::PrintPaperExpectation(
      "naru/resmade and dqm-d should land in the same accuracy class "
      "(the paper's reason for excluding DQM-D); the transformer backbone "
      "is competitive but costlier to train at equal budget. Sampled Bayes "
      "trades the exact variant's determinism for sampling noise in the "
      "tail, mirroring the reference implementation.");
  return 0;
}
