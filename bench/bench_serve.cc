// Closed-loop load benchmark of the in-process serving layer (src/serve/):
// sweeps client threads x request batch size x estimate-cache on/off over a
// skewed (Zipf-repeating) request stream and reports QPS per cell, plus
// the headline speedup of the served configuration (cache + batching) over
// the uncached one-at-a-time baseline. Every cell's selectivities are
// compared bit-exactly against a direct single-threaded run of the same
// model, so the speedup can never come from answering a different question.
// Cells run through SweepContext (guarded + journaled), so a killed run
// resumes at the first missing cell. Emits machine-readable
// BENCH_serve.json (default at the repo root).
//
// Environment knobs (all optional):
//   ARECEL_SERVE_BENCH_ROWS      table rows             (default 200000)
//   ARECEL_SERVE_BENCH_QUERIES   requests per cell      (default 10000)
//   ARECEL_SERVE_BENCH_POOL     distinct queries       (default 512)
//   ARECEL_SERVE_BENCH_EST      estimator registry name (default sampling)
//   ARECEL_SERVE_BENCH_OUT      output JSON path
//                               (default <repo>/BENCH_serve.json)
//   ARECEL_SERVE_CACHE_MB / ARECEL_SERVE_THREADS / ARECEL_QUERY_DEADLINE
//                               serving-layer knobs (src/serve/server.h)
//
//   --smoke                     tiny configuration for the CTest smoke run

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <mutex>

#include "bench_common.h"
#include "data/datasets.h"
#include "serve/server.h"
#include "util/random.h"
#include "util/stats.h"
#include "util/thread_pool.h"
#include "util/timer.h"
#include "workload/generator.h"

namespace {

using namespace arecel;

size_t EnvSize(const char* name, size_t fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback
                      : static_cast<size_t>(std::strtoull(v, nullptr, 10));
}

std::string EnvString(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : std::string(v);
}

struct CellConfig {
  int clients = 1;
  size_t batch = 1;
  bool cache = false;

  std::string Key() const {
    return "clients=" + std::to_string(clients) +
           ",batch=" + std::to_string(batch) +
           ",cache=" + (cache ? std::string("on") : std::string("off"));
  }
};

struct CellResult {
  CellConfig config;
  double seconds = 0.0;
  double qps = 0.0;
  double p99_ms = 0.0;
  double hit_rate = 0.0;
  bool identical = false;
  bool from_journal = false;
  bool ok = false;
  std::string failure;
};

// Everything one closed-loop cell touches, bundled for shared ownership so
// the guarded body survives being abandoned on a deadline (the SweepContext
// capture contract).
struct LoadInputs {
  serve::EstimatorServer* server = nullptr;  // main-scope.
  std::string dataset;
  std::string estimator;
  std::vector<Query> pool;
  std::vector<size_t> requests;      // indices into pool.
  std::vector<double> expected;      // per pool entry, from the direct run.
};

// Runs the closed loop: `clients` threads drain the shared request stream
// in chunks of `batch`, going through Estimate (batch == 1) or
// EstimateBatch. Returns wall seconds; *identical reports whether every
// response matched the direct-run selectivity bit-for-bit, *p99_ms the
// per-request latency tail (a batched request's latency is attributed to
// each query it carried).
double RunClosedLoop(const std::shared_ptr<LoadInputs>& in, int clients,
                     size_t batch, bool* identical, double* p99_ms) {
  std::atomic<size_t> cursor{0};
  std::atomic<bool> all_match{true};
  std::mutex latency_mutex;
  std::vector<double> latencies;
  latencies.reserve(in->requests.size());
  const size_t total = in->requests.size();
  Timer timer;
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    workers.emplace_back([in, batch, total, &cursor, &all_match,
                          &latency_mutex, &latencies] {
      std::vector<Query> queries;
      std::vector<size_t> pool_ids;
      std::vector<double> local_latencies;
      for (;;) {
        const size_t begin = cursor.fetch_add(batch);
        if (begin >= total) break;
        const size_t end = std::min(total, begin + batch);
        if (batch == 1) {
          const size_t id = in->requests[begin];
          const auto response =
              in->server->Estimate(in->dataset, in->estimator,
                                   in->pool[id]);
          if (!response.ok || response.selectivity != in->expected[id])
            all_match.store(false);
          local_latencies.push_back(response.latency_ms);
          continue;
        }
        queries.clear();
        pool_ids.clear();
        for (size_t i = begin; i < end; ++i) {
          pool_ids.push_back(in->requests[i]);
          queries.push_back(in->pool[in->requests[i]]);
        }
        const auto responses = in->server->EstimateBatch(
            in->dataset, in->estimator, queries);
        for (size_t i = 0; i < responses.size(); ++i) {
          if (!responses[i].ok ||
              responses[i].selectivity != in->expected[pool_ids[i]])
            all_match.store(false);
          local_latencies.push_back(responses[i].latency_ms);
        }
      }
      std::lock_guard<std::mutex> lock(latency_mutex);
      latencies.insert(latencies.end(), local_latencies.begin(),
                       local_latencies.end());
    });
  }
  for (std::thread& worker : workers) worker.join();
  const double seconds = timer.ElapsedSeconds();
  *identical = all_match.load();
  *p99_ms = latencies.empty() ? 0.0 : Percentile(latencies, 99.0);
  return seconds;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;

  // Default rows are chosen so the sampling estimator's per-query sample
  // scan has realistic serving cost (the paper's tables are millions of
  // rows); a tiny table makes every estimator so cheap that fixed
  // per-request overhead, not inference, decides QPS.
  const size_t rows =
      EnvSize("ARECEL_SERVE_BENCH_ROWS", smoke ? 4000 : 200000);
  const size_t num_requests =
      EnvSize("ARECEL_SERVE_BENCH_QUERIES", smoke ? 800 : 10000);
  const size_t pool_size =
      EnvSize("ARECEL_SERVE_BENCH_POOL", smoke ? 64 : 512);
  const std::string estimator =
      EnvString("ARECEL_SERVE_BENCH_EST", "sampling");
  std::string out_path = ARECEL_REPO_ROOT "/BENCH_serve.json";
  if (smoke) out_path = "BENCH_serve_smoke.json";
  if (const char* env_out = std::getenv("ARECEL_SERVE_BENCH_OUT"))
    out_path = env_out;

  bench::PrintHeader("bench_serve: serving-layer closed-loop load",
                     "serving-layer QPS; correctness vs direct inference");

  serve::ServeOptions options = serve::ServeOptionsFromEnv();
  options.manager.factory = [](const std::string& name) {
    return bench::MakeBenchEstimator(name);
  };
  serve::EstimatorServer server(options);

  DatasetSpec spec = CensusSpec();
  spec.rows = rows;
  server.RegisterDataset("census", GenerateDataset(spec, /*seed=*/11));

  // Skewed request stream: a fixed pool of distinct queries, requests drawn
  // Zipf(1.0) over the pool — the repeat pattern a plan cache sees. The
  // same stream is replayed for every cell.
  auto inputs = std::make_shared<LoadInputs>();
  inputs->server = &server;
  inputs->dataset = "census";
  inputs->estimator = estimator;
  {
    const Table* table = server.manager().TableSnapshot("census").get();
    inputs->pool = GenerateQueries(*table, pool_size, /*seed=*/23);
  }
  {
    Rng rng(/*seed=*/31);
    inputs->requests.reserve(num_requests);
    for (size_t i = 0; i < num_requests; ++i)
      inputs->requests.push_back(rng.Zipf(inputs->pool.size(), 1.0));
  }

  // Direct single-threaded reference run: train (or load) the model once,
  // then one plain inference per pool entry. Every cell must reproduce
  // these selectivities exactly.
  std::string error;
  auto model = server.manager().GetModel("census", estimator, &error);
  if (model == nullptr) {
    std::fprintf(stderr, "model load failed: %s\n", error.c_str());
    return 1;
  }
  inputs->expected.reserve(inputs->pool.size());
  for (const Query& query : inputs->pool) {
    double sel = model->estimator->EstimateSelectivity(query);
    inputs->expected.push_back(std::min(sel, 1.0));
  }

  std::printf("rows=%zu requests=%zu pool=%zu estimator=%s "
              "dispatch_threads=%d cache=%zuMB\n\n",
              rows, num_requests, pool_size, estimator.c_str(),
              server.options().dispatch_threads,
              server.options().cache_bytes >> 20);

  std::vector<CellConfig> cells;
  const int max_clients = smoke ? 2 : 4;
  const size_t big_batch = smoke ? 16 : 64;
  for (int clients : {1, max_clients})
    for (size_t batch : {size_t{1}, big_batch})
      for (bool cache : {false, true})
        cells.push_back(CellConfig{clients, batch, cache});

  bench::SweepContext sweep("bench_serve");
  std::vector<CellResult> results;
  std::printf("%24s %10s %10s %9s %9s %10s %s\n", "cell", "seconds", "qps",
              "p99_ms", "hit_rate", "identical", "status");
  for (const CellConfig& config : cells) {
    CellResult result;
    result.config = config;
    auto status = sweep.RunCell(estimator, config.Key(), [inputs, config] {
      // Each cell starts from a cold cache so hit rates are comparable.
      inputs->server->ClearCache();
      inputs->server->set_cache_enabled(config.cache);
      const auto before = inputs->server->Stats().cache;
      bool identical = false;
      double p99_ms = 0.0;
      const double seconds = RunClosedLoop(inputs, config.clients,
                                           config.batch, &identical, &p99_ms);
      const auto after = inputs->server->Stats().cache;
      const double lookups =
          static_cast<double>((after.hits - before.hits) +
                              (after.misses - before.misses));
      const double hit_rate =
          lookups == 0
              ? 0.0
              : static_cast<double>(after.hits - before.hits) / lookups;
      return std::vector<std::pair<std::string, double>>{
          {"seconds", seconds},
          {"qps", seconds > 0
                      ? static_cast<double>(inputs->requests.size()) / seconds
                      : 0.0},
          {"p99_ms", p99_ms},
          {"hit_rate", hit_rate},
          {"identical", identical ? 1.0 : 0.0}};
    });
    result.ok = status.ok;
    result.from_journal = status.from_journal;
    result.failure = status.failure;
    for (const auto& [name, value] : status.metrics) {
      if (name == "seconds") result.seconds = value;
      if (name == "qps") result.qps = value;
      if (name == "p99_ms") result.p99_ms = value;
      if (name == "hit_rate") result.hit_rate = value;
      if (name == "identical") result.identical = value != 0.0;
    }
    std::printf("%24s %10.3f %10.0f %9.4f %9.3f %10s %s\n",
                config.Key().c_str(), result.seconds, result.qps,
                result.p99_ms, result.hit_rate,
                result.identical ? "yes" : "NO",
                result.from_journal ? "journal"
                                    : (result.ok ? "" : result.failure.c_str()));
    results.push_back(result);
  }

  // Headline: best served configuration vs uncached one-at-a-time.
  const CellResult* baseline = nullptr;
  const CellResult* served = nullptr;
  for (const CellResult& result : results) {
    if (!result.ok) continue;
    if (result.config.clients == 1 && result.config.batch == 1 &&
        !result.config.cache)
      baseline = &result;
    if (result.config.cache && result.config.batch > 1 &&
        (served == nullptr || result.qps > served->qps))
      served = &result;
  }
  double speedup = 0.0;
  bool all_identical = true;
  for (const CellResult& result : results)
    all_identical = all_identical && result.ok && result.identical;
  if (baseline != nullptr && served != nullptr && baseline->qps > 0)
    speedup = served->qps / baseline->qps;
  std::printf("\nheadline: %s (%.0f qps, p99 %.4f ms) vs %s (%.0f qps, "
              "p99 %.4f ms): %.1fx, estimates %s\n",
              served ? served->config.Key().c_str() : "-",
              served ? served->qps : 0.0, served ? served->p99_ms : 0.0,
              baseline ? baseline->config.Key().c_str() : "-",
              baseline ? baseline->qps : 0.0,
              baseline ? baseline->p99_ms : 0.0, speedup,
              all_identical ? "bit-identical" : "DIVERGED");

  // ---- machine-readable artifact ----------------------------------------
  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  const auto stats = server.Stats();
  std::fprintf(out, "{\n  \"bench\": \"bench_serve\",\n");
  std::fprintf(out, "  \"rows\": %zu,\n  \"requests\": %zu,\n", rows,
               num_requests);
  std::fprintf(out, "  \"pool\": %zu,\n  \"estimator\": \"%s\",\n",
               pool_size, estimator.c_str());
  std::fprintf(out, "  \"dispatch_threads\": %d,\n",
               server.options().dispatch_threads);
  std::fprintf(out, "  \"speedup_cache_batch_vs_baseline\": %.3f,\n",
               speedup);
  std::fprintf(out, "  \"all_identical\": %s,\n",
               all_identical ? "true" : "false");
  std::fprintf(out, "  \"cells\": [");
  for (size_t i = 0; i < results.size(); ++i) {
    const CellResult& result = results[i];
    std::fprintf(out,
                 "%s\n    {\"clients\": %d, \"batch\": %zu, \"cache\": %s, "
                 "\"seconds\": %.6f, \"qps\": %.1f, \"p99_ms\": %.5f, "
                 "\"hit_rate\": %.4f, \"identical\": %s, \"ok\": %s}",
                 i == 0 ? "" : ",", result.config.clients,
                 result.config.batch, result.config.cache ? "true" : "false",
                 result.seconds, result.qps, result.p99_ms, result.hit_rate,
                 result.identical ? "true" : "false",
                 result.ok ? "true" : "false");
  }
  std::fprintf(out, "\n  ],\n");
  std::fprintf(out,
               "  \"server\": {\"requests\": %llu, \"cache_hits\": %llu, "
               "\"cache_misses\": %llu, \"cold_trains\": %llu, "
               "\"deadline_exceeded\": %llu}\n}\n",
               (unsigned long long)stats.requests,
               (unsigned long long)stats.cache.hits,
               (unsigned long long)stats.cache.misses,
               (unsigned long long)stats.manager.cold_trains,
               (unsigned long long)stats.deadline_exceeded);
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());

  if (!all_identical) {
    std::fprintf(stderr,
                 "FAILED: served estimates diverged from direct inference\n");
    return 1;
  }
  return sweep.Finish();
}
