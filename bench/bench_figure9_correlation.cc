// Reproduces Figure 9a: top-1% q-error distribution of the five learned
// estimators as the correlation c between the two synthetic columns rises
// from independent (0) to functionally dependent (1), at skew s = 1.0 and
// domain size d = 1000.

#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "core/registry.h"
#include "data/datasets.h"
#include "util/ascii_table.h"
#include "util/stats.h"
#include "workload/generator.h"

int main() {
  using namespace arecel;
  bench::PrintHeader("Figure 9a: top-1% q-error vs correlation",
                     "Figure 9a (Section 6.2)");
  bench::SweepContext sweep("bench_figure9_correlation");

  const size_t rows = static_cast<size_t>(
      100000 * std::max(0.2, bench::BenchScale()));
  // All-OOD centers explore the whole query space (§6.1).
  WorkloadOptions workload_options;
  workload_options.ood_probability = 1.0;

  for (const std::string& name : LearnedEstimatorNames()) {
    AsciiTable out({"correlation c", "q1", "median", "q3", "max"});
    for (double c : {0.0, 0.25, 0.5, 0.75, 1.0}) {
      const std::string cell_key = "corr=" + FormatFixed(c, 2);
      // Value captures only: after a timeout the abandoned worker outlives
      // this loop iteration (c) and even main's frame (see RunCell).
      const auto status = sweep.RunCell(name, cell_key,
                                        [rows, c, workload_options, name] {
        const Table table = GenerateSynthetic2D(rows, /*skew=*/1.0, c,
                                                /*domain_size=*/1000, 42);
        const Workload train =
            GenerateWorkload(table, 1500, 7, workload_options);
        const Workload test =
            GenerateWorkload(table, bench::BenchQueryCount(), 8,
                             workload_options);
        std::unique_ptr<CardinalityEstimator> estimator =
            bench::MakeBenchEstimator(name);
        TrainContext context;
        context.training_workload = &train;
        estimator->Train(table, context);
        const std::vector<double> top = TopFraction(
            EvaluateQErrors(*estimator, test, table.num_rows()), 0.01);
        const BoxStats box = Box(top);
        return std::vector<std::pair<std::string, double>>{
            {"q1", box.q1}, {"median", box.median}, {"q3", box.q3},
            {"max", box.max}};
      });
      if (!status.ok) {
        out.AddRow({FormatFixed(c, 2), "-", "-", "-",
                    "FAILED " + status.failure});
        continue;
      }
      const auto metric = [&](const char* key) {
        for (const auto& [k, v] : status.metrics)
          if (k == key) return v;
        return 0.0;
      };
      out.AddRow({FormatFixed(c, 2), FormatCompact(metric("q1")),
                  FormatCompact(metric("median")),
                  FormatCompact(metric("q3")),
                  FormatCompact(metric("max"))});
    }
    std::printf("\n--- %s ---\n%s", name.c_str(), out.ToString().c_str());
  }

  bench::PrintPaperExpectation(
      "Every learned method's top-1% q-error grows with correlation, and "
      "jumps 10-100x at c = 1.0 (functional dependency).");
  return sweep.Finish();
}
