// Reproduces Figure 4: training time and average inference latency of the
// learned methods vs the database systems, on CPU and (simulated) GPU.

#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "core/device.h"
#include "core/evaluator.h"
#include "core/registry.h"
#include "util/ascii_table.h"

int main() {
  using namespace arecel;
  bench::PrintHeader("Figure 4: training and inference time",
                     "Figure 4 (Section 4.3)");
  bench::SweepContext sweep("bench_figure4_cost");

  // Learned methods plus the DBMS baselines the figure compares against.
  const std::vector<std::string> names = {"postgres", "mysql",  "dbms-a",
                                          "mscn",     "lw-xgb", "lw-nn",
                                          "naru",     "deepdb"};
  for (const Table& table : bench::LoadBenchmarkDatasets()) {
    std::printf("\n--- dataset %s (%zu rows) ---\n", table.name().c_str(),
                table.num_rows());
    const Workload train =
        GenerateWorkload(table, bench::BenchTrainQueryCount(), 1001);
    const Workload test =
        GenerateWorkload(table, bench::BenchQueryCount() / 2, 2002);

    AsciiTable out({"estimator", "train cpu (s)", "train gpu* (s)",
                    "infer cpu (ms)", "infer gpu* (ms)", "model (KB)"});
    for (const std::string& name : names) {
      const EstimatorReport report =
          sweep.EvaluateCell(name, table, train, test);
      if (report.served_by.empty()) {
        out.AddRow({name, "-", "-", "-", "-",
                    bench::SweepContext::StatusLabel(report)});
        continue;
      }
      const double train_gpu =
          report.train_seconds /
          SimulatedSpeedup(name, Device::kGpu, /*training=*/true);
      const double infer_gpu =
          report.avg_inference_ms /
          SimulatedSpeedup(name, Device::kGpu, /*training=*/false);
      const bool has_gpu =
          SimulatedSpeedup(name, Device::kGpu, true) != 1.0 ||
          SimulatedSpeedup(name, Device::kGpu, false) != 1.0;
      const std::string status = bench::SweepContext::StatusLabel(report);
      out.AddRow({status.empty() ? name : name + " [" + status + "]",
                  FormatFixed(report.train_seconds, 2),
                  has_gpu ? FormatFixed(train_gpu, 2) : "-",
                  FormatFixed(report.avg_inference_ms, 3),
                  has_gpu ? FormatFixed(infer_gpu, 3) : "-",
                  FormatFixed(
                      static_cast<double>(report.model_size_bytes) / 1024.0,
                      0)});
    }
    std::printf("%s", out.ToString().c_str());
  }

  std::printf("\n(*) gpu columns are simulated: measured CPU time divided by "
              "the per-method speedup factors from the paper's Figure 4 "
              "narrative (core/device.h).\n");
  bench::PrintPaperExpectation(
      "DBMSs collect statistics in seconds and answer in 1-2 ms. LW-XGB is "
      "the fastest learned method to train; DeepDB second. Naru is the "
      "slowest trainer (hours on the paper's DMV; minutes here at reduced "
      "scale) and, with DeepDB, the slowest at inference (5-25 ms/query); "
      "the query-driven regression methods answer in well under a "
      "millisecond. GPU helps Naru and LW-NN but not MSCN.");
  return sweep.Finish();
}
