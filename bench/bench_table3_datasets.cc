// Reproduces Table 3: characteristics of the four benchmark datasets
// (size, rows, columns / categorical columns, joint domain).

#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "util/ascii_table.h"

int main() {
  using namespace arecel;
  bench::PrintHeader("Table 3: dataset characteristics",
                     "Table 3 (Section 4.1)");

  AsciiTable out({"dataset", "size(MB)", "rows", "cols/cat", "log10(domain)"});
  for (const Table& table : bench::LoadBenchmarkDatasets()) {
    size_t categorical = 0;
    for (const Column& col : table.columns())
      categorical += col.categorical ? 1 : 0;
    char cols[32];
    std::snprintf(cols, sizeof(cols), "%zu/%zu", table.num_cols(),
                  categorical);
    out.AddRow({table.name(),
                FormatFixed(static_cast<double>(table.DataSizeBytes()) / 1e6,
                            1),
                std::to_string(table.num_rows()), cols,
                FormatFixed(table.Log10JointDomain(), 1)});
  }
  std::printf("%s", out.ToString().c_str());

  bench::PrintPaperExpectation(
      "Census 49K rows 13/8 cols domain 1e16; Forest 581K 10/0 1e27; Power "
      "2.1M 7/0 1e17; DMV 11.6M 11/10 1e15. Rows here are scaled down "
      "(DESIGN.md §2); column structure and joint-domain order of magnitude "
      "match.");
  return 0;
}
