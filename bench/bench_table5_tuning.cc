// Reproduces Table 5: hyper-parameter sensitivity of the neural-network
// estimators — the ratio between the worst and best max q-error across the
// architectures explored during tuning.

#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "core/tuning.h"
#include "data/datasets.h"
#include "estimators/learned/lw_nn.h"
#include "estimators/learned/mscn.h"
#include "estimators/learned/naru.h"
#include "util/ascii_table.h"
#include "workload/generator.h"

namespace {

using arecel::LwNnEstimator;
using arecel::MscnEstimator;
using arecel::NaruEstimator;
using arecel::TuningCandidate;

// Four architectures per method, spanning sane to deliberately under- or
// over-parameterized, as the paper's tuning grid does.
std::vector<TuningCandidate> NaruCandidates() {
  std::vector<TuningCandidate> candidates;
  struct Config {
    const char* label;
    size_t hidden;
    int blocks;
    float lr;
  };
  for (const Config& config :
       {Config{"h64-b2-lr7e4", 64, 2, 7e-4f},
        Config{"h32-b2-lr7e4", 32, 2, 7e-4f},
        Config{"h8-b1-lr7e4", 8, 1, 7e-4f},
        Config{"h64-b2-lr3e2", 64, 2, 3e-2f}}) {
    candidates.push_back({config.label, [config] {
                            NaruEstimator::Options options;
                            options.hidden_units = config.hidden;
                            options.num_blocks = config.blocks;
                            options.learning_rate = config.lr;
                            options.epochs = 10;
                            return std::make_unique<NaruEstimator>(options);
                          }});
  }
  return candidates;
}

std::vector<TuningCandidate> MscnCandidates() {
  std::vector<TuningCandidate> candidates;
  struct Config {
    const char* label;
    size_t hidden;
    size_t sample;
    float lr;
  };
  for (const Config& config :
       {Config{"h48-s256-lr1e3", 48, 256, 1e-3f},
        Config{"h16-s64-lr1e3", 16, 64, 1e-3f},
        Config{"h48-s256-lr3e2", 48, 256, 3e-2f},
        Config{"h8-s16-lr1e4", 8, 16, 1e-4f}}) {
    candidates.push_back({config.label, [config] {
                            MscnEstimator::Options options;
                            options.hidden_units = config.hidden;
                            options.sample_size = config.sample;
                            options.learning_rate = config.lr;
                            options.epochs = 15;
                            return std::make_unique<MscnEstimator>(options);
                          }});
  }
  return candidates;
}

std::vector<TuningCandidate> LwNnCandidates() {
  std::vector<TuningCandidate> candidates;
  struct Config {
    const char* label;
    std::vector<size_t> hidden;
    float lr;
  };
  for (const Config& config :
       {Config{"64x64-lr1e3", {64, 64}, 1e-3f},
        Config{"32-lr1e3", {32}, 1e-3f},
        Config{"64x64-lr3e2", {64, 64}, 3e-2f},
        Config{"8-lr1e4", {8}, 1e-4f}}) {
    candidates.push_back({config.label, [config] {
                            LwNnEstimator::Options options;
                            options.hidden = config.hidden;
                            options.learning_rate = config.lr;
                            options.epochs = 40;
                            return std::make_unique<LwNnEstimator>(options);
                          }});
  }
  return candidates;
}

}  // namespace

int main() {
  using namespace arecel;
  bench::PrintHeader("Table 5: worst/best max q-error over tuning grid",
                     "Table 5 (Section 4.3)");

  // The paper reports all four datasets; Census and Power bracket the size
  // range and keep the grid affordable on one core.
  std::vector<DatasetSpec> specs = {CensusSpec(), PowerSpec()};
  AsciiTable out({"estimator", "dataset", "best arch", "best max",
                  "worst max", "ratio"});
  for (DatasetSpec& spec : specs) {
    spec.rows = static_cast<size_t>(
        static_cast<double>(spec.rows) * bench::BenchScale() * 0.5);
    const Table table = GenerateDataset(spec, 2021);
    const Workload train =
        GenerateWorkload(table, bench::BenchTrainQueryCount(), 1001);
    const Workload validation =
        GenerateWorkload(table, bench::BenchQueryCount() / 2, 3003);

    struct Method {
      const char* name;
      std::vector<TuningCandidate> candidates;
    };
    for (const Method& method :
         {Method{"naru", NaruCandidates()},
          Method{"mscn", MscnCandidates()},
          Method{"lw-nn", LwNnCandidates()}}) {
      const TuningResult result =
          RunTuning(method.candidates, table, train, validation);
      out.AddRow({method.name, spec.name, result.best().label,
                  FormatCompact(result.best().max_qerror),
                  FormatCompact(
                      result.outcomes[static_cast<size_t>(result.worst_index)]
                          .max_qerror),
                  FormatFixed(result.WorstBestRatio(), 1)});
    }
  }
  std::printf("%s", out.ToString().c_str());

  bench::PrintPaperExpectation(
      "Without tuning, models can be badly wrong: the worst/best max-q-error "
      "ratio reaches ~1e5 for Naru, ~1e2 for MSCN and ~10 for LW-NN in the "
      "paper. The ordering (Naru most sensitive, LW-NN least) should "
      "reproduce.");
  return 0;
}
