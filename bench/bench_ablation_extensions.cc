// Ablation/extension study: the §7 research-opportunity prototypes.
//  * GuardedEstimator: restores fidelity-A/B and stability on any base
//    model by construction — at what accuracy cost? (none, by design).
//  * HybridEstimator: routes simple queries to cheap statistics and hard
//    ones to a heavy model, and serves the light model while the heavy one
//    is mid-update.

#include <cstdio>

#include "bench_common.h"
#include "core/registry.h"
#include "core/rules.h"
#include "data/datasets.h"
#include "estimators/extensions/guarded.h"
#include "estimators/extensions/hybrid.h"
#include "util/ascii_table.h"
#include "util/stats.h"
#include "util/timer.h"
#include "workload/generator.h"

int main() {
  using namespace arecel;
  bench::PrintHeader("Extensions: rule guarding and hierarchical hybrid",
                     "research opportunities (Section 7)");

  bench::CellGuard cells;
  // Runs a cell under the combined deadline; prints a FAILED row into
  // `out` (padded to its column count) instead of aborting the study.
  const auto guarded_cell = [&](AsciiTable& out, const std::string& label,
                                size_t columns,
                                const std::function<void()>& body) {
    if (cells.Run(label, body)) return;
    std::vector<std::string> row{label};
    while (row.size() + 1 < columns) row.push_back("-");
    row.push_back("FAILED");
    out.AddRow(row);
  };

  DatasetSpec spec = CensusSpec();
  spec.rows = static_cast<size_t>(
      static_cast<double>(spec.rows) * bench::BenchScale());
  const Table table = GenerateDataset(spec, 2021);
  const Workload train =
      GenerateWorkload(table, bench::BenchTrainQueryCount(), 1001);
  const Workload test =
      GenerateWorkload(table, bench::BenchQueryCount(), 2002);
  TrainContext context;
  context.training_workload = &train;

  // --- Rule guarding. ---
  {
    AsciiTable out({"estimator", "rules passed", "95th", "max"});
    for (const char* base_name : {"lw-xgb", "naru"}) {
      for (bool guard : {false, true}) {
        const std::string label =
            guard ? std::string("guarded(") + base_name + ")" : base_name;
        guarded_cell(out, label, 4, [&] {
          std::unique_ptr<CardinalityEstimator> estimator;
          if (guard) {
            estimator = std::make_unique<GuardedEstimator>(
                bench::MakeBenchEstimator(base_name));
          } else {
            estimator = bench::MakeBenchEstimator(base_name);
          }
          estimator->Train(table, context);
          const auto rules = CheckLogicalRules(*estimator, table);
          size_t passed = 0;
          for (const RuleResult& rule : rules) passed += rule.satisfied();
          const QuantileSummary s =
              Summarize(EvaluateQErrors(*estimator, test, table.num_rows()));
          out.AddRow({estimator->Name(),
                      std::to_string(passed) + "/5",
                      FormatCompact(s.p95), FormatCompact(s.max)});
        });
      }
    }
    std::printf("\nrule guarding (fidelity-A/B + stability by wrapper):\n%s",
                out.ToString().c_str());
  }

  // --- Hierarchical hybrid. ---
  {
    AsciiTable out({"estimator", "train s", "avg ms/query", "95th", "max"});
    auto measure = [&](CardinalityEstimator& estimator) {
      Timer train_timer;
      estimator.Train(table, context);
      const double train_s = train_timer.ElapsedSeconds();
      Timer inference_timer;
      const QuantileSummary s =
          Summarize(EvaluateQErrors(estimator, test, table.num_rows()));
      const double ms =
          inference_timer.ElapsedMillis() / static_cast<double>(test.size());
      out.AddRow({estimator.Name(), FormatFixed(train_s, 1),
                  FormatFixed(ms, 3), FormatCompact(s.p95),
                  FormatCompact(s.max)});
    };
    guarded_cell(out, "postgres", 5, [&] {
      auto light = bench::MakeBenchEstimator("postgres");
      measure(*light);
    });
    guarded_cell(out, "naru", 5, [&] {
      auto heavy = bench::MakeBenchEstimator("naru");
      measure(*heavy);
    });
    guarded_cell(out, "hybrid(postgres,naru)", 5, [&] {
      HybridEstimator hybrid(bench::MakeBenchEstimator("postgres"),
                             bench::MakeBenchEstimator("naru"));
      measure(hybrid);
    });
    std::printf("\nhierarchical hybrid (<=1 predicate -> postgres, else "
                "naru):\n%s",
                out.ToString().c_str());
  }

  bench::PrintPaperExpectation(
      "Guarding restores 3/5 rules with unchanged accuracy on ordinary "
      "queries. The hybrid keeps most of the heavy model's tail accuracy "
      "while answering the (frequent) single-predicate queries at "
      "statistics speed.");
  return cells.Finish();
}
