// Ablation/extension study: the §7 research-opportunity prototypes.
//  * GuardedEstimator: restores fidelity-A/B and stability on any base
//    model by construction — at what accuracy cost? (none, by design).
//  * HybridEstimator: routes simple queries to cheap statistics and hard
//    ones to a heavy model, and serves the light model while the heavy one
//    is mid-update.

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/registry.h"
#include "core/rules.h"
#include "data/datasets.h"
#include "estimators/extensions/guarded.h"
#include "estimators/extensions/hybrid.h"
#include "util/ascii_table.h"
#include "util/stats.h"
#include "util/timer.h"
#include "workload/generator.h"

int main() {
  using namespace arecel;
  bench::PrintHeader("Extensions: rule guarding and hierarchical hybrid",
                     "research opportunities (Section 7)");

  bench::CellGuard cells;
  // Runs a cell under the combined deadline. The body returns its table
  // row; on failure a FAILED row (padded to `columns`) is printed instead.
  // The row lands in `out` only on the non-abandoned path — a timed-out
  // worker keeps writing its own shared row, which nobody reads, instead
  // of reaching into the block-scoped AsciiTable. Body lambdas must follow
  // the CellGuard capture contract (loop-scoped inputs by value).
  const auto guarded_cell =
      [&cells](AsciiTable& out, const std::string& label, size_t columns,
               const std::function<std::vector<std::string>()>& body) {
        auto row = std::make_shared<std::vector<std::string>>();
        if (cells.Run(label, [row, body] { *row = body(); })) {
          out.AddRow(*row);
          return;
        }
        std::vector<std::string> failed{label};
        while (failed.size() + 1 < columns) failed.push_back("-");
        failed.push_back("FAILED");
        out.AddRow(failed);
      };

  DatasetSpec spec = CensusSpec();
  spec.rows = static_cast<size_t>(
      static_cast<double>(spec.rows) * bench::BenchScale());
  const Table table = GenerateDataset(spec, 2021);
  const Workload train =
      GenerateWorkload(table, bench::BenchTrainQueryCount(), 1001);
  const Workload test =
      GenerateWorkload(table, bench::BenchQueryCount(), 2002);
  TrainContext context;
  context.training_workload = &train;

  // --- Rule guarding. ---
  {
    AsciiTable out({"estimator", "rules passed", "95th", "max"});
    for (const char* base_name : {"lw-xgb", "naru"}) {
      for (bool guard : {false, true}) {
        const std::string label =
            guard ? std::string("guarded(") + base_name + ")" : base_name;
        // guard/base_name are loop-scoped, so the body copies them;
        // table/context/test are main-scoped and safe by reference.
        guarded_cell(out, label, 4,
                     [&, guard, base_name]() -> std::vector<std::string> {
          std::unique_ptr<CardinalityEstimator> estimator;
          if (guard) {
            estimator = std::make_unique<GuardedEstimator>(
                bench::MakeBenchEstimator(base_name));
          } else {
            estimator = bench::MakeBenchEstimator(base_name);
          }
          estimator->Train(table, context);
          const auto rules = CheckLogicalRules(*estimator, table);
          size_t passed = 0;
          for (const RuleResult& rule : rules) passed += rule.satisfied();
          const QuantileSummary s =
              Summarize(EvaluateQErrors(*estimator, test, table.num_rows()));
          return {estimator->Name(), std::to_string(passed) + "/5",
                  FormatCompact(s.p95), FormatCompact(s.max)};
        });
      }
    }
    std::printf("\nrule guarding (fidelity-A/B + stability by wrapper):\n%s",
                out.ToString().c_str());
  }

  // --- Hierarchical hybrid. ---
  {
    AsciiTable out({"estimator", "train s", "avg ms/query", "95th", "max"});
    auto measure =
        [&](CardinalityEstimator& estimator) -> std::vector<std::string> {
      Timer train_timer;
      estimator.Train(table, context);
      const double train_s = train_timer.ElapsedSeconds();
      Timer inference_timer;
      const QuantileSummary s =
          Summarize(EvaluateQErrors(estimator, test, table.num_rows()));
      const double ms =
          inference_timer.ElapsedMillis() / static_cast<double>(test.size());
      return {estimator.Name(), FormatFixed(train_s, 1), FormatFixed(ms, 3),
              FormatCompact(s.p95), FormatCompact(s.max)};
    };
    // Bodies copy `measure` (block-scoped; its own captures are all
    // main-scoped references, so the copy stays valid after this block).
    guarded_cell(out, "postgres", 5, [measure] {
      auto light = bench::MakeBenchEstimator("postgres");
      return measure(*light);
    });
    guarded_cell(out, "naru", 5, [measure] {
      auto heavy = bench::MakeBenchEstimator("naru");
      return measure(*heavy);
    });
    guarded_cell(out, "hybrid(postgres,naru)", 5, [measure] {
      HybridEstimator hybrid(bench::MakeBenchEstimator("postgres"),
                             bench::MakeBenchEstimator("naru"));
      return measure(hybrid);
    });
    std::printf("\nhierarchical hybrid (<=1 predicate -> postgres, else "
                "naru):\n%s",
                out.ToString().c_str());
  }

  bench::PrintPaperExpectation(
      "Guarding restores 3/5 rules with unchanged accuracy on ordinary "
      "queries. The hybrid keeps most of the heavy model's tail accuracy "
      "while answering the (frequent) single-predicate queries at "
      "statistics speed.");
  return cells.Finish();
}
