// google-benchmark microbenchmark of the ML substrate: matrix multiply,
// ResMADE training steps and sliced forwards, GBDT fitting, k-means, RDC —
// the building blocks whose cost dominates training (Figure 4) and
// inference (progressive sampling).

#include <benchmark/benchmark.h>

#include "ml/gbdt.h"
#include "ml/kmeans.h"
#include "ml/made.h"
#include "ml/matrix.h"
#include "ml/rdc.h"
#include "util/random.h"

namespace {

using namespace arecel;

void BM_MatMul(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(1);
  Matrix a(n, n), b(n, n), out;
  for (size_t i = 0; i < a.size(); ++i) {
    a.data()[i] = static_cast<float>(rng.Uniform(-1, 1));
    b.data()[i] = static_cast<float>(rng.Uniform(-1, 1));
  }
  for (auto _ : state) {
    MatMul(a, b, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n * n * n));
}
BENCHMARK(BM_MatMul)->Arg(64)->Arg(128)->Arg(256);

void BM_ResMadeTrainStep(benchmark::State& state) {
  const int vocab = static_cast<int>(state.range(0));
  ResMade::Options options;
  options.hidden_units = 64;
  ResMade made({vocab, vocab, vocab, vocab}, options);
  Rng rng(2);
  const size_t batch = 256;
  Matrix input(batch, made.input_dim());
  std::vector<int32_t> targets(batch * 4);
  for (size_t b = 0; b < batch; ++b) {
    int32_t codes[4];
    for (int j = 0; j < 4; ++j) {
      codes[j] = static_cast<int32_t>(
          rng.UniformInt(static_cast<uint64_t>(vocab)));
      targets[b * 4 + static_cast<size_t>(j)] = codes[j];
    }
    made.Encode(codes, 4, input.Row(b));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(made.TrainStep(input, targets, 1e-3f));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch));
}
BENCHMARK(BM_ResMadeTrainStep)->Arg(64)->Arg(256);

void BM_ResMadeColumnForward(benchmark::State& state) {
  ResMade::Options options;
  options.hidden_units = 64;
  ResMade made({256, 256, 256, 256}, options);
  Matrix input(128, made.input_dim(), 0.0f);
  Matrix logits;
  for (auto _ : state) {
    made.ForwardColumnLogits(input, 2, &logits);
    benchmark::DoNotOptimize(logits.data());
  }
}
BENCHMARK(BM_ResMadeColumnForward);

void BM_GbdtTrain(benchmark::State& state) {
  Rng rng(3);
  const size_t n = 2000;
  std::vector<std::vector<float>> x(n, std::vector<float>(8));
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    for (auto& v : x[i]) v = static_cast<float>(rng.Uniform(0, 1));
    y[i] = x[i][0] * 2 - x[i][3];
  }
  GbdtOptions options;
  options.num_trees = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Gbdt model;
    model.Train(x, y, options);
    benchmark::DoNotOptimize(model.num_trees());
  }
}
BENCHMARK(BM_GbdtTrain)->Arg(16)->Arg(64);

void BM_KMeans(benchmark::State& state) {
  Rng rng(4);
  std::vector<std::vector<double>> points(
      static_cast<size_t>(state.range(0)), std::vector<double>(6));
  for (auto& p : points)
    for (auto& v : p) v = rng.Uniform(0, 1);
  for (auto _ : state) {
    const KMeansResult result = KMeans(points, 2, 20, 5);
    benchmark::DoNotOptimize(result.assignments.data());
  }
}
BENCHMARK(BM_KMeans)->Arg(2000)->Arg(8000);

void BM_Rdc(benchmark::State& state) {
  Rng rng(5);
  std::vector<double> x(static_cast<size_t>(state.range(0)));
  std::vector<double> y(x.size());
  for (size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.Uniform();
    y[i] = rng.Bernoulli(0.5) ? x[i] : rng.Uniform();
  }
  for (auto _ : state) benchmark::DoNotOptimize(Rdc(x, y));
}
BENCHMARK(BM_Rdc)->Arg(2000);

}  // namespace

BENCHMARK_MAIN();
