// Micro + end-to-end benchmark of the ML compute kernels (ml/kernels.h):
// the fast backend (SIMD, cache-blocked, fused epilogues) against the
// reference backend (the historical scalar loops, kept verbatim as the
// numerical baseline). Three layers of measurement:
//
//   1. a matmul grid (MatMul / MatMulBT / MatMulAT over mixed shapes,
//      including tile-unaligned ones) with per-cell divergence checks;
//   2. end-to-end sections at the granularity the estimators actually pay:
//      a ResMADE training run, a Naru progressive-sampling estimate batch,
//      and an LW-NN training run, each timed under both backends;
//   3. quick single-backend timings of the non-matrix ML substrate (GBDT,
//      k-means, RDC) for continuity with earlier perf tracking.
//
// Every fast/reference pair also compares outputs, so the bench doubles as
// a coarse differential gate: it exits nonzero when any divergence exceeds
// its documented tolerance. Emits machine-readable BENCH_ml.json (default
// at the repo root) to seed the perf trajectory: later PRs touching ml/
// re-run this bench and compare against the committed baseline.
//
// Environment knobs (all optional):
//   ARECEL_ML_BENCH_MICRO        0 skips the matmul grid      (default 1)
//   ARECEL_ML_BENCH_OTHER        0 skips gbdt/kmeans/rdc      (default 1)
//   ARECEL_ML_BENCH_STEPS        ResMADE train steps          (default 30)
//   ARECEL_ML_BENCH_BATCH        ResMADE batch size           (default 512)
//   ARECEL_ML_BENCH_ROWS         table rows for naru/lw-nn    (default 20000)
//   ARECEL_ML_BENCH_QUERIES      naru estimate batch          (default 64)
//   ARECEL_ML_BENCH_NARU_EPOCHS  naru training epochs         (default 4)
//   ARECEL_ML_BENCH_LWNN_EPOCHS  lw-nn training epochs        (default 10)
//   ARECEL_ML_BENCH_OUT          output path (default <repo>/BENCH_ml.json)
//
// Flags: --out <path> (or --out=<path>) overrides the output path and wins
// over ARECEL_ML_BENCH_OUT; the bench_ml_smoke CTest target uses it so a
// smoke run can never clobber the checked-in baseline.
//
// The quant tier (ARECEL_ML_KERNEL=quant, ml/packed.h) is measured in two
// extra layers: a packed/quant dense-forward grid, and a quantized Naru
// estimate batch gated on end-to-end q-error divergence vs the fp32 fast
// path (quantization is lossy by design, so the gate is a q-error budget,
// not a float tolerance). The packed fp32 path runs the same FMA chains as
// the unpacked fast kernel — bit-identical on full 16-column tiles — but
// the unpacked kernel's final sub-8-column scalar tail rounds mul+add
// where the packed lane fuses, so packed-vs-fast is gated with the same
// float tolerance class as reference-vs-fast.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "data/datasets.h"
#include "estimators/learned/lw_nn.h"
#include "estimators/learned/naru.h"
#include "ml/gbdt.h"
#include "ml/kernels.h"
#include "ml/kmeans.h"
#include "ml/made.h"
#include "ml/matrix.h"
#include "ml/packed.h"
#include "ml/rdc.h"
#include "util/random.h"
#include "util/thread_pool.h"
#include "util/timer.h"
#include "workload/generator.h"

namespace {

using namespace arecel;

size_t EnvSize(const char* name, size_t fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback
                      : static_cast<size_t>(std::strtoull(v, nullptr, 10));
}

// Seconds per call: warm up once, then double the repetition count until the
// timed loop is long enough to trust the clock.
template <typename F>
double TimePerCall(F&& fn, double min_seconds = 0.08) {
  fn();
  size_t reps = 1;
  for (;;) {
    Timer timer;
    for (size_t i = 0; i < reps; ++i) fn();
    const double s = timer.ElapsedSeconds();
    if (s >= min_seconds || reps >= (1u << 22)) return s / static_cast<double>(reps);
    reps = s <= 1e-9 ? reps * 16
                     : std::max(reps * 2,
                                static_cast<size_t>(
                                    static_cast<double>(reps) * min_seconds / s) +
                                    1);
  }
}

float MaxAbsDiff(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return 1e30f;
  float worst = 0.0f;
  for (size_t i = 0; i < a.size(); ++i)
    worst = std::max(worst, std::abs(a.data()[i] - b.data()[i]));
  return worst;
}

void FillRandom(Matrix* m, Rng& rng) {
  for (size_t i = 0; i < m->size(); ++i)
    m->data()[i] = static_cast<float>(rng.Uniform(-1, 1));
}

// ---- matmul grid ----------------------------------------------------------

struct MicroCell {
  const char* op = "";
  size_t m = 0, k = 0, n = 0;
  double reference_seconds = 0.0;
  double fast_seconds = 0.0;
  double divergence = 0.0;

  double speedup() const {
    return fast_seconds > 0.0 ? reference_seconds / fast_seconds : 0.0;
  }
  double gflops_fast() const {
    return fast_seconds > 0.0
               ? 2.0 * static_cast<double>(m * k * n) / fast_seconds / 1e9
               : 0.0;
  }
};

// Absolute divergence tolerance for a k-length float32 contraction over
// inputs in [-1, 1]: FMA + 8-lane tree reduction vs strict left-to-right
// accumulation. Empirically the worst case over these shapes is ~1e-4;
// 2e-3 matches the tolerance tests/matrix_test.cc has always used.
constexpr double kMicroTolerance = 2e-3;

MicroCell MeasureMicroCell(const char* op, size_t m, size_t k, size_t n) {
  MicroCell cell;
  cell.op = op;
  cell.m = m;
  cell.k = k;
  cell.n = n;
  Rng rng(99);
  Matrix a, b, out_ref, out_fast;
  const bool bt = std::string(op) == "MatMulBT";
  const bool at = std::string(op) == "MatMulAT";
  if (bt) {
    a.Resize(m, k);
    b.Resize(n, k);
  } else if (at) {
    a.Resize(k, m);
    b.Resize(k, n);
  } else {
    a.Resize(m, k);
    b.Resize(k, n);
  }
  FillRandom(&a, rng);
  FillRandom(&b, rng);
  auto run = [&](Matrix* out) {
    if (bt) {
      MatMulBT(a, b, out);
    } else if (at) {
      MatMulAT(a, b, out);
    } else {
      MatMul(a, b, out);
    }
  };
  {
    ScopedMlKernelBackend scoped(MlKernelBackend::kReference);
    cell.reference_seconds = TimePerCall([&] { run(&out_ref); });
  }
  {
    ScopedMlKernelBackend scoped(MlKernelBackend::kFast);
    cell.fast_seconds = TimePerCall([&] { run(&out_fast); });
  }
  cell.divergence = MaxAbsDiff(out_ref, out_fast);
  return cell;
}

// ---- packed / quant dense-forward grid ------------------------------------

// One DenseForward shape measured across the three serving tiers: the fast
// fp32 kernel over row-major weights, the packed-B fp32 kernel, and the int8
// quant kernel (ml/packed.h). The packed fp32 tier runs the same per-column
// FMA chains in k order as the unpacked fast tier — bit-identical wherever
// the unpacked kernel vectorizes — but the unpacked kernel's sub-8-column
// scalar tail rounds mul+add where the packed lane fuses, so the gate is
// kMicroTolerance (the reference-vs-fast rounding class), not equality. The
// quant tier is lossy by construction; the grid reports its max abs output
// error for visibility, and the end-to-end acceptance gate lives in the naru
// q-error section below.
struct PackedCell {
  size_t m = 0, k = 0, n = 0;
  double fast_seconds = 0.0;    // unpacked fast DenseForward.
  double packed_seconds = 0.0;  // packed-B fp32 PackedDenseForward.
  double quant_seconds = 0.0;   // int8 PackedDenseForward (quant backend).
  double packed_max_abs = 0.0;
  double quant_max_abs = 0.0;

  double packed_speedup() const {
    return packed_seconds > 0.0 ? fast_seconds / packed_seconds : 0.0;
  }
  double quant_speedup() const {
    return quant_seconds > 0.0 ? fast_seconds / quant_seconds : 0.0;
  }
};

PackedCell MeasurePackedCell(size_t m, size_t k, size_t n) {
  PackedCell cell;
  cell.m = m;
  cell.k = k;
  cell.n = n;
  Rng rng(123);
  Matrix input, weights;
  input.Resize(m, k);
  weights.Resize(k, n);
  FillRandom(&input, rng);
  FillRandom(&weights, rng);
  std::vector<float> bias(n);
  for (auto& v : bias) v = static_cast<float>(rng.Uniform(-1, 1));
  PackedDenseWeights packed;
  packed.Build(weights);

  Matrix out_fast, out_packed, out_quant;
  ScopedMlKernelBackend fast_scope(MlKernelBackend::kFast);
  cell.fast_seconds = TimePerCall(
      [&] { DenseForward(input, weights, bias.data(), true, &out_fast); });
  cell.packed_seconds = TimePerCall([&] {
    PackedDenseForward(input, packed, bias.data(), true, &out_packed);
  });
  {
    ScopedMlKernelBackend quant_scope(MlKernelBackend::kQuant);
    cell.quant_seconds = TimePerCall([&] {
      PackedDenseForward(input, packed, bias.data(), true, &out_quant);
    });
  }
  cell.packed_max_abs = MaxAbsDiff(out_fast, out_packed);
  cell.quant_max_abs = MaxAbsDiff(out_fast, out_quant);
  return cell;
}

// ---- end-to-end sections --------------------------------------------------

struct Section {
  std::string name;
  double reference_seconds = 0.0;
  double fast_seconds = 0.0;
  // Max abs difference between the two backends evaluating the *same
  // trained model* on the same inputs (training trajectories are allowed to
  // drift — summation order differs by design; see ml/kernels.h).
  double divergence = 0.0;
  double tolerance = 0.0;
  std::string detail;

  double speedup() const {
    return fast_seconds > 0.0 ? reference_seconds / fast_seconds : 0.0;
  }
  bool within_tolerance() const { return divergence <= tolerance; }
};

// A ResMADE training run at paper scale (hidden 64, two residual blocks,
// four 256-vocab columns) — the inner loop of Naru training (Figure 4's
// dominant cost). Both backends train from identical init on the same
// batch; divergence compares the fast-trained model's logits evaluated
// under both backends.
Section BenchResMadeTrain(size_t steps, size_t batch) {
  Section section;
  section.name = "resmade_train";
  section.detail = "steps=" + std::to_string(steps) +
                   " batch=" + std::to_string(batch);
  const std::vector<int> vocabs = {256, 256, 256, 256};
  ResMade::Options options;
  options.hidden_units = 64;

  Rng rng(7);
  Matrix input;
  std::vector<int32_t> targets(batch * vocabs.size());
  {
    ResMade probe(vocabs, options);
    input.Resize(batch, probe.input_dim());
    for (size_t b = 0; b < batch; ++b) {
      int32_t codes[4];
      for (size_t j = 0; j < vocabs.size(); ++j) {
        codes[j] = static_cast<int32_t>(
            rng.UniformInt(static_cast<uint64_t>(vocabs[j])));
        targets[b * vocabs.size() + j] = codes[j];
      }
      probe.Encode(codes, vocabs.size(), input.Row(b));
    }
  }

  float loss_ref = 0.0f, loss_fast = 0.0f;
  {
    ScopedMlKernelBackend scoped(MlKernelBackend::kReference);
    ResMade made(vocabs, options);
    Timer timer;
    for (size_t s = 0; s < steps; ++s)
      loss_ref = made.TrainStep(input, targets, 1e-3f);
    section.reference_seconds = timer.ElapsedSeconds();
  }
  ScopedMlKernelBackend fast_scope(MlKernelBackend::kFast);
  ResMade made(vocabs, options);
  {
    Timer timer;
    for (size_t s = 0; s < steps; ++s)
      loss_fast = made.TrainStep(input, targets, 1e-3f);
    section.fast_seconds = timer.ElapsedSeconds();
  }
  // Same trained model, both backends, same eval input.
  Matrix logits_fast, logits_ref;
  made.Forward(input, &logits_fast);
  {
    ScopedMlKernelBackend scoped(MlKernelBackend::kReference);
    made.Forward(input, &logits_ref);
  }
  section.divergence = MaxAbsDiff(logits_ref, logits_fast);
  section.tolerance = 2e-3;
  section.detail += " final_loss_ref=" + std::to_string(loss_ref) +
                    " final_loss_fast=" + std::to_string(loss_fast);
  return section;
}

// Serving-tier comparison over the same trained Naru model: the model is
// packed (PackForServing), then the identical estimate batch is re-timed
// through the packed-B fp32 path and the int8 quant path. Packed fp32
// estimates may drift from unpacked-fast estimates only by the usual
// rounding-order effect (the sub-8-column scalar tail; a flipped sample
// path moves a query's 128-path mean by O(1/128)), so they share the naru
// section's divergence tolerance. The quant tier is gated on end-to-end
// estimate drift measured as per-query q-error factors
// max(e_q/e_f, e_f/e_q) — selectivities floored at half a row so a
// near-empty query cannot blow up the ratio — against documented median and
// p99 budgets (DESIGN.md §10).
constexpr double kQuantQerrMedianBudget = 1.10;
constexpr double kQuantQerrP99Budget = 1.50;

struct NaruQuantSection {
  double fast_seconds = 0.0;    // unpacked fp32 fast (the baseline column).
  double packed_seconds = 0.0;  // packed-B fp32 serving path.
  double quant_seconds = 0.0;   // int8 quant serving path.
  double packed_divergence = 0.0;  // max abs estimate diff packed vs fast.
  double packed_tolerance = 0.0;   // the naru section's tolerance.
  double qerr_median = 0.0;
  double qerr_p99 = 0.0;
  double qerr_median_budget = kQuantQerrMedianBudget;
  double qerr_p99_budget = kQuantQerrP99Budget;

  double packed_speedup() const {
    return packed_seconds > 0.0 ? fast_seconds / packed_seconds : 0.0;
  }
  double quant_speedup() const {
    return quant_seconds > 0.0 ? fast_seconds / quant_seconds : 0.0;
  }
  bool ok() const {
    return packed_divergence <= packed_tolerance &&
           qerr_median <= qerr_median_budget && qerr_p99 <= qerr_p99_budget;
  }
};

// A Naru progressive-sampling estimate batch: the trained model answers
// `num_queries` range queries, each drawing 128 sample paths column by
// column through ForwardColumnLogits (the sliced inference path). The model
// is trained once (fast backend, pinned sampling seed); both backends then
// run the identical estimate batch. Tolerance is looser than the pure
// matmul bound because a ~1e-5 probability perturbation can flip a sampled
// path, shifting that query's 128-path mean by O(1/128).
Section BenchNaruInference(const Table& table, size_t num_queries, int epochs,
                           NaruQuantSection* quant) {
  Section section;
  section.name = "naru_inference";
  section.detail = "queries=" + std::to_string(num_queries) +
                   " sample_count=128 epochs=" + std::to_string(epochs);

  NaruEstimator::Options options;
  options.epochs = epochs;
  options.pin_sampling_seed = true;
  NaruEstimator naru(options);
  TrainContext context;
  context.seed = 42;
  {
    ScopedMlKernelBackend scoped(MlKernelBackend::kFast);
    naru.Train(table, context);
  }
  const std::vector<Query> queries =
      GenerateQueries(table, num_queries, /*seed=*/31);

  std::vector<double> est_ref(queries.size()), est_fast(queries.size());
  {
    ScopedMlKernelBackend scoped(MlKernelBackend::kReference);
    Timer timer;
    for (size_t i = 0; i < queries.size(); ++i)
      est_ref[i] = naru.EstimateSelectivity(queries[i]);
    section.reference_seconds = timer.ElapsedSeconds();
  }
  {
    ScopedMlKernelBackend scoped(MlKernelBackend::kFast);
    Timer timer;
    for (size_t i = 0; i < queries.size(); ++i)
      est_fast[i] = naru.EstimateSelectivity(queries[i]);
    section.fast_seconds = timer.ElapsedSeconds();
  }
  for (size_t i = 0; i < queries.size(); ++i)
    section.divergence =
        std::max(section.divergence, std::abs(est_ref[i] - est_fast[i]));
  section.tolerance = 2e-2;

  // Serving tiers: pack the trained model, then re-run the identical batch
  // through the packed fp32 and int8 quant paths.
  naru.PackForServing();
  quant->fast_seconds = section.fast_seconds;
  std::vector<double> est_packed(queries.size()), est_quant(queries.size());
  {
    ScopedMlKernelBackend scoped(MlKernelBackend::kFast);
    Timer timer;
    for (size_t i = 0; i < queries.size(); ++i)
      est_packed[i] = naru.EstimateSelectivity(queries[i]);
    quant->packed_seconds = timer.ElapsedSeconds();
  }
  {
    ScopedMlKernelBackend scoped(MlKernelBackend::kQuant);
    Timer timer;
    for (size_t i = 0; i < queries.size(); ++i)
      est_quant[i] = naru.EstimateSelectivity(queries[i]);
    quant->quant_seconds = timer.ElapsedSeconds();
  }
  quant->packed_tolerance = section.tolerance;
  for (size_t i = 0; i < queries.size(); ++i)
    quant->packed_divergence = std::max(
        quant->packed_divergence, std::abs(est_packed[i] - est_fast[i]));
  const double floor =
      0.5 / static_cast<double>(std::max<size_t>(1, table.num_rows()));
  std::vector<double> qerrs(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    const double f = std::max(est_fast[i], floor);
    const double q = std::max(est_quant[i], floor);
    qerrs[i] = std::max(f / q, q / f);
  }
  std::sort(qerrs.begin(), qerrs.end());
  quant->qerr_median = qerrs[qerrs.size() / 2];
  quant->qerr_p99 = qerrs[std::min(
      qerrs.size() - 1,
      static_cast<size_t>(0.99 * static_cast<double>(qerrs.size())))];
  return section;
}

// An LW-NN training run over a labelled workload. Both backends train from
// identical init; divergence compares the fast-trained model's estimates
// under both backends over the workload's first queries.
Section BenchLwNnTrain(const Table& table, const Workload& workload,
                       int epochs) {
  Section section;
  section.name = "lwnn_train";
  section.detail = "queries=" + std::to_string(workload.queries.size()) +
                   " epochs=" + std::to_string(epochs);
  LwNnEstimator::Options options;
  options.epochs = epochs;
  TrainContext context;
  context.training_workload = &workload;
  context.seed = 42;

  double loss_ref = 0.0, loss_fast = 0.0;
  {
    ScopedMlKernelBackend scoped(MlKernelBackend::kReference);
    LwNnEstimator lwnn(options);
    Timer timer;
    lwnn.Train(table, context);
    section.reference_seconds = timer.ElapsedSeconds();
    loss_ref = lwnn.final_loss();
  }
  ScopedMlKernelBackend fast_scope(MlKernelBackend::kFast);
  LwNnEstimator lwnn(options);
  {
    Timer timer;
    lwnn.Train(table, context);
    section.fast_seconds = timer.ElapsedSeconds();
    loss_fast = lwnn.final_loss();
  }
  const size_t eval = std::min<size_t>(32, workload.queries.size());
  for (size_t i = 0; i < eval; ++i) {
    const double fast = lwnn.EstimateSelectivity(workload.queries[i]);
    double ref = 0.0;
    {
      ScopedMlKernelBackend scoped(MlKernelBackend::kReference);
      ref = lwnn.EstimateSelectivity(workload.queries[i]);
    }
    section.divergence = std::max(section.divergence, std::abs(ref - fast));
  }
  section.tolerance = 1e-3;
  section.detail += " final_loss_ref=" + std::to_string(loss_ref) +
                    " final_loss_fast=" + std::to_string(loss_fast);
  return section;
}

void PrintSection(const Section& s) {
  std::printf("%-16s %12.4f %12.4f %8.2fx %10.2e %8.0e %-4s %s\n",
              s.name.c_str(), s.reference_seconds, s.fast_seconds,
              s.speedup(), s.divergence, s.tolerance,
              s.within_tolerance() ? "ok" : "FAIL", s.detail.c_str());
}

struct OtherTiming {
  const char* name = "";
  double seconds = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  const bool run_micro = EnvSize("ARECEL_ML_BENCH_MICRO", 1) != 0;
  const bool run_other = EnvSize("ARECEL_ML_BENCH_OTHER", 1) != 0;
  const size_t steps = EnvSize("ARECEL_ML_BENCH_STEPS", 30);
  const size_t batch = EnvSize("ARECEL_ML_BENCH_BATCH", 512);
  const size_t rows = EnvSize("ARECEL_ML_BENCH_ROWS", 20000);
  const size_t queries = EnvSize("ARECEL_ML_BENCH_QUERIES", 64);
  const int naru_epochs =
      static_cast<int>(EnvSize("ARECEL_ML_BENCH_NARU_EPOCHS", 4));
  const int lwnn_epochs =
      static_cast<int>(EnvSize("ARECEL_ML_BENCH_LWNN_EPOCHS", 10));
  std::string out_path = ARECEL_REPO_ROOT "/BENCH_ml.json";
  if (const char* env_out = std::getenv("ARECEL_ML_BENCH_OUT"))
    out_path = env_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else {
      std::fprintf(stderr, "usage: bench_micro_ml [--out <path>]\n");
      return 2;
    }
  }

  const std::string cpu_flags = MlCpuFeatureFlags();
  std::printf("== bench_micro_ml: fast vs. reference ML kernels ==\n");
  std::printf("backend=%s simd=%s cpu=%s workers=%d\n\n",
              MlKernelBackendName(ActiveMlKernelBackend()), MlKernelSimdName(),
              cpu_flags.empty() ? "-" : cpu_flags.c_str(),
              ParallelWorkerCount());

  bool all_within = true;

  // ---- matmul grid --------------------------------------------------------
  std::vector<MicroCell> grid;
  if (run_micro) {
    std::printf("%-8s %5s %5s %5s %12s %12s %9s %10s %9s\n", "op", "m", "k",
                "n", "ref_s", "fast_s", "speedup", "div", "gflops");
    const size_t shapes[][3] = {
        {256, 256, 256},  // square, cache-resident
        {512, 64, 64},    // tall-skinny: a training batch through hidden 64
        {128, 64, 1024},  // wide output: ResMADE logits layer
        {511, 67, 33},    // deliberately tile- and lane-unaligned
    };
    for (const char* op : {"MatMul", "MatMulBT", "MatMulAT"}) {
      for (const auto& s : shapes) {
        MicroCell cell = MeasureMicroCell(op, s[0], s[1], s[2]);
        all_within = all_within && cell.divergence <= kMicroTolerance;
        std::printf("%-8s %5zu %5zu %5zu %12.6f %12.6f %8.1fx %10.2e %9.1f\n",
                    cell.op, cell.m, cell.k, cell.n, cell.reference_seconds,
                    cell.fast_seconds, cell.speedup(), cell.divergence,
                    cell.gflops_fast());
        grid.push_back(cell);
      }
    }
    std::printf("\n");
  }

  // ---- packed / quant dense-forward grid ----------------------------------
  std::vector<PackedCell> packed_grid;
  if (run_micro) {
    std::printf("%-12s %5s %5s %5s %10s %10s %10s %8s %8s %10s %10s\n",
                "packed", "m", "k", "n", "fast_s", "packed_s", "quant_s",
                "pspeed", "qspeed", "packed_err", "quant_err");
    const size_t shapes[][3] = {
        {256, 256, 256},  // square, cache-resident
        {512, 64, 64},    // tall-skinny hidden layer
        {128, 64, 1024},  // wide logits head: the packed-B headline shape
        {1, 64, 1024},    // single-sample serving logits
        {511, 67, 33},    // deliberately tile- and lane-unaligned
    };
    for (const auto& s : shapes) {
      PackedCell cell = MeasurePackedCell(s[0], s[1], s[2]);
      all_within = all_within && cell.packed_max_abs <= kMicroTolerance;
      std::printf(
          "%-12s %5zu %5zu %5zu %10.6f %10.6f %10.6f %7.1fx %7.1fx %10.2e "
          "%10.2e\n",
          "DenseForward", cell.m, cell.k, cell.n, cell.fast_seconds,
          cell.packed_seconds, cell.quant_seconds, cell.packed_speedup(),
          cell.quant_speedup(), cell.packed_max_abs, cell.quant_max_abs);
      packed_grid.push_back(cell);
    }
    std::printf("\n");
  }

  // ---- end-to-end sections ------------------------------------------------
  std::printf("%-16s %12s %12s %9s %10s %8s %-4s\n", "section", "ref_s",
              "fast_s", "speedup", "div", "tol", "ok");
  const Table table = [&] {
    DatasetSpec spec = CensusSpec();
    spec.rows = rows;
    return GenerateDataset(spec, /*seed=*/11);
  }();

  std::vector<Section> sections;
  sections.push_back(BenchResMadeTrain(steps, batch));
  PrintSection(sections.back());
  NaruQuantSection naru_quant;
  sections.push_back(BenchNaruInference(table, queries, naru_epochs,
                                        &naru_quant));
  PrintSection(sections.back());
  const Workload workload = GenerateWorkload(table, 400, /*seed=*/21);
  sections.push_back(BenchLwNnTrain(table, workload, lwnn_epochs));
  PrintSection(sections.back());
  for (const Section& s : sections) all_within = all_within && s.within_tolerance();
  std::printf("\n");

  // ---- quant serving tier (end-to-end gate) -------------------------------
  std::printf("naru serving tiers: fast=%.4fs packed=%.4fs (%.2fx, "
              "div=%.2e) quant=%.4fs (%.2fx)\n",
              naru_quant.fast_seconds, naru_quant.packed_seconds,
              naru_quant.packed_speedup(), naru_quant.packed_divergence,
              naru_quant.quant_seconds, naru_quant.quant_speedup());
  std::printf("quant q-error vs fp32 fast: median=%.4f (budget %.2f) "
              "p99=%.4f (budget %.2f) %s\n\n",
              naru_quant.qerr_median, naru_quant.qerr_median_budget,
              naru_quant.qerr_p99, naru_quant.qerr_p99_budget,
              naru_quant.ok() ? "ok" : "FAIL");
  all_within = all_within && naru_quant.ok();

  // ---- non-matrix substrate (single backend, continuity timings) ----------
  std::vector<OtherTiming> other;
  if (run_other) {
    {
      Rng rng(3);
      const size_t n = 2000;
      std::vector<std::vector<float>> x(n, std::vector<float>(8));
      std::vector<double> y(n);
      for (size_t i = 0; i < n; ++i) {
        for (auto& v : x[i]) v = static_cast<float>(rng.Uniform(0, 1));
        y[i] = x[i][0] * 2 - x[i][3];
      }
      GbdtOptions options;
      options.num_trees = 64;
      Timer timer;
      Gbdt model;
      model.Train(x, y, options);
      other.push_back({"gbdt_train_64t_2000x8", timer.ElapsedSeconds()});
    }
    {
      Rng rng(4);
      std::vector<std::vector<double>> points(2000, std::vector<double>(6));
      for (auto& p : points)
        for (auto& v : p) v = rng.Uniform(0, 1);
      Timer timer;
      const KMeansResult result = KMeans(points, 2, 20, 5);
      other.push_back({"kmeans_2000x6", timer.ElapsedSeconds()});
      (void)result;
    }
    {
      Rng rng(5);
      std::vector<double> x(2000), y(2000);
      for (size_t i = 0; i < x.size(); ++i) {
        x[i] = rng.Uniform();
        y[i] = rng.Bernoulli(0.5) ? x[i] : rng.Uniform();
      }
      Timer timer;
      const double rdc = Rdc(x, y);
      other.push_back({"rdc_2000", timer.ElapsedSeconds()});
      (void)rdc;
    }
    for (const OtherTiming& t : other)
      std::printf("%-24s %10.4f s\n", t.name, t.seconds);
    std::printf("\n");
  }

  // ---- machine-readable artifact ------------------------------------------
  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"bench_micro_ml\",\n");
  std::fprintf(out, "  \"backend\": \"%s\",\n",
               MlKernelBackendName(ActiveMlKernelBackend()));
  std::fprintf(out, "  \"simd\": \"%s\",\n", MlKernelSimdName());
  std::fprintf(out, "  \"cpu\": \"%s\",\n", cpu_flags.c_str());
  std::fprintf(out, "  \"workers\": %d,\n", ParallelWorkerCount());
  auto print_section = [&](const Section& s) {
    std::fprintf(out,
                 "{\"name\": \"%s\", \"reference_seconds\": %.6f, "
                 "\"fast_seconds\": %.6f, \"speedup\": %.3f, "
                 "\"divergence\": %.3e, \"tolerance\": %.1e, "
                 "\"within_tolerance\": %s, \"detail\": \"%s\"}",
                 s.name.c_str(), s.reference_seconds, s.fast_seconds,
                 s.speedup(), s.divergence, s.tolerance,
                 s.within_tolerance() ? "true" : "false", s.detail.c_str());
  };
  std::fprintf(out, "  \"headline\": {\n    \"resmade_train\": ");
  print_section(sections[0]);
  std::fprintf(out, ",\n    \"naru_inference\": ");
  print_section(sections[1]);
  std::fprintf(out,
               ",\n    \"naru_inference_quant\": {\"fast_seconds\": %.6f, "
               "\"packed_seconds\": %.6f, \"quant_seconds\": %.6f, "
               "\"packed_speedup\": %.3f, \"quant_speedup\": %.3f, "
               "\"packed_divergence\": %.3e, \"packed_tolerance\": %.1e, "
               "\"qerr_median\": %.4f, "
               "\"qerr_p99\": %.4f, \"qerr_median_budget\": %.2f, "
               "\"qerr_p99_budget\": %.2f, \"ok\": %s}",
               naru_quant.fast_seconds, naru_quant.packed_seconds,
               naru_quant.quant_seconds, naru_quant.packed_speedup(),
               naru_quant.quant_speedup(), naru_quant.packed_divergence,
               naru_quant.packed_tolerance,
               naru_quant.qerr_median, naru_quant.qerr_p99,
               naru_quant.qerr_median_budget, naru_quant.qerr_p99_budget,
               naru_quant.ok() ? "true" : "false");
  std::fprintf(out, "\n  },\n");
  std::fprintf(out, "  \"sections\": [");
  for (size_t i = 0; i < sections.size(); ++i) {
    std::fprintf(out, "%s\n    ", i == 0 ? "" : ",");
    print_section(sections[i]);
  }
  std::fprintf(out, "\n  ],\n");
  std::fprintf(out, "  \"matmul_grid\": [");
  for (size_t i = 0; i < grid.size(); ++i) {
    const MicroCell& c = grid[i];
    std::fprintf(out,
                 "%s\n    {\"op\": \"%s\", \"m\": %zu, \"k\": %zu, "
                 "\"n\": %zu, \"reference_seconds\": %.6f, "
                 "\"fast_seconds\": %.6f, \"speedup\": %.3f, "
                 "\"gflops_fast\": %.2f, \"divergence\": %.3e}",
                 i == 0 ? "" : ",", c.op, c.m, c.k, c.n, c.reference_seconds,
                 c.fast_seconds, c.speedup(), c.gflops_fast(), c.divergence);
  }
  std::fprintf(out, "\n  ],\n");
  std::fprintf(out, "  \"packed_grid\": [");
  for (size_t i = 0; i < packed_grid.size(); ++i) {
    const PackedCell& c = packed_grid[i];
    std::fprintf(out,
                 "%s\n    {\"m\": %zu, \"k\": %zu, \"n\": %zu, "
                 "\"fast_seconds\": %.6f, \"packed_seconds\": %.6f, "
                 "\"quant_seconds\": %.6f, \"packed_speedup\": %.3f, "
                 "\"quant_speedup\": %.3f, \"packed_max_abs\": %.3e, "
                 "\"quant_max_abs\": %.3e}",
                 i == 0 ? "" : ",", c.m, c.k, c.n, c.fast_seconds,
                 c.packed_seconds, c.quant_seconds, c.packed_speedup(),
                 c.quant_speedup(), c.packed_max_abs, c.quant_max_abs);
  }
  std::fprintf(out, "\n  ],\n");
  std::fprintf(out, "  \"other\": [");
  for (size_t i = 0; i < other.size(); ++i)
    std::fprintf(out, "%s\n    {\"name\": \"%s\", \"seconds\": %.6f}",
                 i == 0 ? "" : ",", other[i].name, other[i].seconds);
  std::fprintf(out, "\n  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());

  if (!all_within) {
    std::fprintf(stderr,
                 "FAILED: a divergence gate tripped (fast-vs-reference "
                 "tolerance, packed bit-identity, or quant q-error budget)\n");
    return 1;
  }
  return 0;
}
