// Micro-benchmark of the vectorized block-scan execution engine
// (src/scan/) against the naive per-query reference executor, across a
// rows x predicates x batch-size grid plus a batch-labeling headline at
// paper scale (10K queries x 1M rows by default). Every measured cell also
// checks count equality, so the bench doubles as a coarse differential
// gate. Emits machine-readable BENCH_scan.json (default at the repo root)
// to seed the perf trajectory: later PRs compare against it to detect
// scan-path regressions.
//
// Environment knobs (all optional):
//   ARECEL_SCAN_BENCH_ROWS     headline table rows        (default 1000000)
//   ARECEL_SCAN_BENCH_QUERIES  headline batch size        (default 10000)
//   ARECEL_SCAN_BENCH_GRID     0 skips the grid           (default 1)
//   ARECEL_SCAN_BENCH_OUT      output JSON path (default <repo>/BENCH_scan.json)

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "data/datasets.h"
#include "scan/block_scan.h"
#include "util/thread_pool.h"
#include "util/timer.h"
#include "workload/generator.h"
#include "workload/query.h"

namespace {

using namespace arecel;

size_t EnvSize(const char* name, size_t fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback
                      : static_cast<size_t>(std::strtoull(v, nullptr, 10));
}

Table MakeCensusLike(size_t rows, uint64_t seed) {
  DatasetSpec spec = CensusSpec();
  spec.rows = rows;
  return GenerateDataset(spec, seed);
}

// The pre-engine labeling path: one full naive scan per query,
// parallelized over queries exactly as the old LabelQueries was.
std::vector<size_t> NaiveCounts(const Table& table,
                                const std::vector<Query>& queries) {
  std::vector<size_t> counts(queries.size(), 0);
  ParallelFor(0, queries.size(), [&](size_t i) {
    counts[i] = ExecuteCountNaive(table, queries[i]);
  });
  return counts;
}

struct Measurement {
  double naive_seconds = 0.0;
  double block_seconds = 0.0;
  bool counts_match = false;

  double speedup() const {
    return block_seconds > 0.0 ? naive_seconds / block_seconds : 0.0;
  }
};

// Times naive-vs-block over `queries`, labeling `batch` queries per engine
// call (batch == 1 exercises the single-query ExecuteCount path, larger
// batches the shared scan).
Measurement MeasureCell(const Table& table, const std::vector<Query>& queries,
                        size_t batch) {
  Measurement m;
  Timer timer;
  const std::vector<size_t> naive = NaiveCounts(table, queries);
  m.naive_seconds = timer.ElapsedSeconds();

  std::vector<size_t> block(queries.size(), 0);
  timer.Reset();
  if (batch <= 1) {
    for (size_t i = 0; i < queries.size(); ++i)
      block[i] = ExecuteCount(table, queries[i]);
  } else {
    scan::BlockScanner scanner(table);
    for (size_t begin = 0; begin < queries.size(); begin += batch) {
      const size_t end = std::min(queries.size(), begin + batch);
      const std::vector<Query> slice(queries.begin() + begin,
                                     queries.begin() + end);
      const std::vector<size_t> counts = scanner.CountBatch(slice);
      for (size_t i = 0; i < counts.size(); ++i) block[begin + i] = counts[i];
    }
  }
  m.block_seconds = timer.ElapsedSeconds();
  m.counts_match = block == naive;
  return m;
}

struct GridCell {
  size_t rows = 0;
  int preds = 0;
  size_t batch = 0;
  size_t queries = 0;
  Measurement m;
};

}  // namespace

int main() {
  const size_t headline_rows = EnvSize("ARECEL_SCAN_BENCH_ROWS", 1000000);
  const size_t headline_queries =
      EnvSize("ARECEL_SCAN_BENCH_QUERIES", 10000);
  const bool run_grid = EnvSize("ARECEL_SCAN_BENCH_GRID", 1) != 0;
  std::string out_path = ARECEL_REPO_ROOT "/BENCH_scan.json";
  if (const char* env_out = std::getenv("ARECEL_SCAN_BENCH_OUT"))
    out_path = env_out;

  std::printf("== bench_micro_scan: naive vs. vectorized block scan ==\n");
  std::printf("workers=%d block_size=%zu\n\n", ParallelWorkerCount(),
              scan::kDefaultBlockSize);

  bool all_match = true;

  // ---- rows x predicates x batch grid -----------------------------------
  std::vector<GridCell> grid;
  if (run_grid) {
    std::printf("%8s %6s %6s %8s %12s %12s %9s %s\n", "rows", "preds",
                "batch", "queries", "naive_s", "block_s", "speedup",
                "match");
    const size_t grid_queries = 128;
    for (size_t rows : {16384u, 131072u}) {
      const Table table = MakeCensusLike(rows, /*seed=*/101);
      for (int preds : {1, 2, 4}) {
        WorkloadOptions options;
        options.min_predicates = preds;
        options.max_predicates = preds;
        const std::vector<Query> queries = GenerateQueries(
            table, grid_queries, /*seed=*/202 + static_cast<uint64_t>(preds),
            options);
        for (size_t batch : {1u, 16u, 128u}) {
          GridCell cell;
          cell.rows = rows;
          cell.preds = preds;
          cell.batch = batch;
          cell.queries = grid_queries;
          cell.m = MeasureCell(table, queries, batch);
          all_match = all_match && cell.m.counts_match;
          std::printf("%8zu %6d %6zu %8zu %12.4f %12.4f %8.1fx %s\n",
                      cell.rows, cell.preds, cell.batch, cell.queries,
                      cell.m.naive_seconds, cell.m.block_seconds,
                      cell.m.speedup(), cell.m.counts_match ? "ok" : "MISMATCH");
          grid.push_back(cell);
        }
      }
    }
    std::printf("\n");
  }

  // ---- batch-labeling headline ------------------------------------------
  std::printf("headline: labeling %zu queries over %zu rows...\n",
              headline_queries, headline_rows);
  const Table table = MakeCensusLike(headline_rows, /*seed=*/11);
  const std::vector<Query> queries =
      GenerateQueries(table, headline_queries, /*seed=*/12);
  const Measurement headline =
      MeasureCell(table, queries, headline_queries);
  all_match = all_match && headline.counts_match;
  std::printf("naive  %.3f s\nblock  %.3f s\nspeedup %.1fx (%s)\n",
              headline.naive_seconds, headline.block_seconds,
              headline.speedup(), headline.counts_match ? "ok" : "MISMATCH");

  // ---- machine-readable artifact ----------------------------------------
  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"bench_micro_scan\",\n");
  std::fprintf(out, "  \"block_size\": %zu,\n", scan::kDefaultBlockSize);
  std::fprintf(out, "  \"workers\": %d,\n", ParallelWorkerCount());
  std::fprintf(out, "  \"headline\": {\"rows\": %zu, \"queries\": %zu, "
                    "\"naive_seconds\": %.6f, \"block_seconds\": %.6f, "
                    "\"speedup\": %.3f, \"counts_match\": %s},\n",
               headline_rows, headline_queries, headline.naive_seconds,
               headline.block_seconds, headline.speedup(),
               headline.counts_match ? "true" : "false");
  std::fprintf(out, "  \"grid\": [");
  for (size_t i = 0; i < grid.size(); ++i) {
    const GridCell& cell = grid[i];
    std::fprintf(out,
                 "%s\n    {\"rows\": %zu, \"preds\": %d, \"batch\": %zu, "
                 "\"queries\": %zu, \"naive_seconds\": %.6f, "
                 "\"block_seconds\": %.6f, \"speedup\": %.3f, "
                 "\"counts_match\": %s}",
                 i == 0 ? "" : ",", cell.rows, cell.preds, cell.batch,
                 cell.queries, cell.m.naive_seconds, cell.m.block_seconds,
                 cell.m.speedup(), cell.m.counts_match ? "true" : "false");
  }
  std::fprintf(out, "\n  ]\n}\n");
  std::fclose(out);
  std::printf("\nwrote %s\n", out_path.c_str());

  if (!all_match) {
    std::fprintf(stderr,
                 "FAILED: block-scan counts diverged from the naive "
                 "executor\n");
    return 1;
  }
  return 0;
}
