// Micro-benchmark of the vectorized block-scan execution engine
// (src/scan/) against the naive per-query reference executor, across a
// rows x predicates x batch-size grid plus a batch-labeling headline at
// paper scale (10K queries x 1M rows by default), plus an equality-heavy
// categorical grid (low-cardinality Zipf columns) that pits the rich
// synopsis (dictionaries + per-block bitmaps + code kernels) against the
// min/max-only baseline. Every measured cell also checks count equality,
// so the bench doubles as a coarse differential gate. Emits
// machine-readable BENCH_scan.json (default at the repo root) to seed the
// perf trajectory: later PRs compare against it to detect scan-path
// regressions.
//
// Usage: bench_micro_scan [--out <path>]
//
// Environment knobs (all optional):
//   ARECEL_SCAN_BENCH_ROWS     headline table rows        (default 1000000)
//   ARECEL_SCAN_BENCH_QUERIES  headline batch size        (default 10000)
//   ARECEL_SCAN_BENCH_GRID     0 skips the range grid     (default 1)
//   ARECEL_SCAN_BENCH_CATGRID  0 skips the categorical grid (default 1)
//   ARECEL_SCAN_BENCH_CATROWS  categorical grid rows      (default 262144)
//   ARECEL_SCAN_BENCH_OUT      output JSON path (default <repo>/BENCH_scan.json;
//                              the --out flag wins over the env var)

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "data/datasets.h"
#include "scan/block_scan.h"
#include "util/random.h"
#include "util/thread_pool.h"
#include "util/timer.h"
#include "workload/generator.h"
#include "workload/query.h"

namespace {

using namespace arecel;

size_t EnvSize(const char* name, size_t fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback
                      : static_cast<size_t>(std::strtoull(v, nullptr, 10));
}

Table MakeCensusLike(size_t rows, uint64_t seed) {
  DatasetSpec spec = CensusSpec();
  spec.rows = rows;
  return GenerateDataset(spec, seed);
}

// The pre-engine labeling path: one full naive scan per query,
// parallelized over queries exactly as the old LabelQueries was.
std::vector<size_t> NaiveCounts(const Table& table,
                                const std::vector<Query>& queries) {
  std::vector<size_t> counts(queries.size(), 0);
  ParallelFor(0, queries.size(), [&](size_t i) {
    counts[i] = ExecuteCountNaive(table, queries[i]);
  });
  return counts;
}

struct Measurement {
  double naive_seconds = 0.0;
  double block_seconds = 0.0;
  bool counts_match = false;

  double speedup() const {
    return block_seconds > 0.0 ? naive_seconds / block_seconds : 0.0;
  }
};

// Times naive-vs-block over `queries`, labeling `batch` queries per engine
// call (batch == 1 exercises the single-query ExecuteCount path, larger
// batches the shared scan).
Measurement MeasureCell(const Table& table, const std::vector<Query>& queries,
                        size_t batch) {
  Measurement m;
  Timer timer;
  const std::vector<size_t> naive = NaiveCounts(table, queries);
  m.naive_seconds = timer.ElapsedSeconds();

  std::vector<size_t> block(queries.size(), 0);
  timer.Reset();
  if (batch <= 1) {
    for (size_t i = 0; i < queries.size(); ++i)
      block[i] = ExecuteCount(table, queries[i]);
  } else {
    scan::BlockScanner scanner(table);
    for (size_t begin = 0; begin < queries.size(); begin += batch) {
      const size_t end = std::min(queries.size(), begin + batch);
      const std::vector<Query> slice(queries.begin() + begin,
                                     queries.begin() + end);
      const std::vector<size_t> counts = scanner.CountBatch(slice);
      for (size_t i = 0; i < counts.size(); ++i) block[begin + i] = counts[i];
    }
  }
  m.block_seconds = timer.ElapsedSeconds();
  m.counts_match = block == naive;
  return m;
}

struct GridCell {
  size_t rows = 0;
  int preds = 0;
  size_t batch = 0;
  size_t queries = 0;
  Measurement m;
};

// ---- categorical equality grid (rich vs min/max-only synopses) -----------

// Low-cardinality Zipf columns — the paper's dominant Census/DMV predicate
// shape, where min/max envelopes prune almost nothing and pruning must come
// from dictionary bitmaps.
Table MakeCategoricalZipf(size_t rows, size_t cols, size_t cardinality,
                          uint64_t seed) {
  Rng rng(seed);
  Table t("catzipf");
  for (size_t c = 0; c < cols; ++c) {
    std::vector<double> vals(rows);
    for (double& v : vals)
      v = static_cast<double>(rng.Zipf(cardinality, 1.1));
    t.AddColumn("cat" + std::to_string(c), std::move(vals), true);
  }
  t.Finalize();
  return t;
}

// Equality-heavy workload: mostly point predicates on uniformly drawn
// domain values (rare values dominate, which is exactly where bitmap
// pruning pays), with a few narrow ranges mixed in.
std::vector<Query> EqualityQueries(const Table& table, size_t count,
                                   uint64_t seed) {
  Rng rng(seed);
  std::vector<Query> queries(count);
  for (Query& q : queries) {
    const size_t preds = 1 + rng.UniformInt(uint64_t{2});
    for (size_t i = 0; i < preds; ++i) {
      const int col =
          static_cast<int>(rng.UniformInt(uint64_t{table.num_cols()}));
      const Column& column = table.column(static_cast<size_t>(col));
      const double a =
          column.domain[rng.UniformInt(uint64_t{column.domain.size()})];
      if (rng.Bernoulli(0.8)) {
        q.predicates.push_back({col, a, a});
      } else {
        const double b =
            column.domain[rng.UniformInt(uint64_t{column.domain.size()})];
        q.predicates.push_back({col, std::min(a, b), std::max(a, b)});
      }
    }
  }
  return queries;
}

struct CatCell {
  size_t rows = 0;
  size_t cardinality = 0;
  size_t queries = 0;
  double naive_seconds = 0.0;
  double zone_seconds = 0.0;  // min/max-only synopsis (the old engine).
  double rich_seconds = 0.0;  // dictionaries + bitmaps + code kernels.
  bool counts_match = false;
  size_t zone_bytes = 0;
  size_t rich_bytes = 0;
  scan::ScanStats rich_stats;  // pruning counters of the rich arm.

  double speedup_vs_zone() const {
    return rich_seconds > 0.0 ? zone_seconds / rich_seconds : 0.0;
  }
  double speedup_vs_naive() const {
    return rich_seconds > 0.0 ? naive_seconds / rich_seconds : 0.0;
  }
};

CatCell MeasureCatCell(size_t rows, size_t cardinality, size_t num_queries,
                       uint64_t seed) {
  CatCell cell;
  cell.rows = rows;
  cell.cardinality = cardinality;
  cell.queries = num_queries;
  const Table table = MakeCategoricalZipf(rows, /*cols=*/4, cardinality, seed);
  const std::vector<Query> queries =
      EqualityQueries(table, num_queries, seed + 1);

  Timer timer;
  const std::vector<size_t> naive = NaiveCounts(table, queries);
  cell.naive_seconds = timer.ElapsedSeconds();

  scan::ScanOptions zone_options;
  zone_options.rich_synopsis = false;
  const scan::BlockScanner zone(table, zone_options);
  cell.zone_bytes = zone.synopsis().SizeBytes();
  timer.Reset();
  const std::vector<size_t> zone_counts = zone.CountBatch(queries);
  cell.zone_seconds = timer.ElapsedSeconds();

  const scan::BlockScanner rich(table);
  cell.rich_bytes = rich.synopsis().SizeBytes();
  timer.Reset();
  const std::vector<size_t> rich_counts = rich.CountBatch(queries);
  cell.rich_seconds = timer.ElapsedSeconds();
  cell.rich_stats = rich.stats();

  cell.counts_match = rich_counts == naive && zone_counts == naive;
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  const size_t headline_rows = EnvSize("ARECEL_SCAN_BENCH_ROWS", 1000000);
  const size_t headline_queries =
      EnvSize("ARECEL_SCAN_BENCH_QUERIES", 10000);
  const bool run_grid = EnvSize("ARECEL_SCAN_BENCH_GRID", 1) != 0;
  const bool run_catgrid = EnvSize("ARECEL_SCAN_BENCH_CATGRID", 1) != 0;
  const size_t cat_rows = EnvSize("ARECEL_SCAN_BENCH_CATROWS", 262144);
  std::string out_path = ARECEL_REPO_ROOT "/BENCH_scan.json";
  if (const char* env_out = std::getenv("ARECEL_SCAN_BENCH_OUT"))
    out_path = env_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else {
      std::fprintf(stderr, "usage: bench_micro_scan [--out <path>]\n");
      return 2;
    }
  }

  std::printf("== bench_micro_scan: naive vs. vectorized block scan ==\n");
  std::printf("workers=%d block_size=%zu\n\n", ParallelWorkerCount(),
              scan::kDefaultBlockSize);

  bool all_match = true;

  // ---- rows x predicates x batch grid -----------------------------------
  std::vector<GridCell> grid;
  if (run_grid) {
    std::printf("%8s %6s %6s %8s %12s %12s %9s %s\n", "rows", "preds",
                "batch", "queries", "naive_s", "block_s", "speedup",
                "match");
    const size_t grid_queries = 128;
    for (size_t rows : {16384u, 131072u}) {
      const Table table = MakeCensusLike(rows, /*seed=*/101);
      for (int preds : {1, 2, 4}) {
        WorkloadOptions options;
        options.min_predicates = preds;
        options.max_predicates = preds;
        const std::vector<Query> queries = GenerateQueries(
            table, grid_queries, /*seed=*/202 + static_cast<uint64_t>(preds),
            options);
        for (size_t batch : {1u, 16u, 128u}) {
          GridCell cell;
          cell.rows = rows;
          cell.preds = preds;
          cell.batch = batch;
          cell.queries = grid_queries;
          cell.m = MeasureCell(table, queries, batch);
          all_match = all_match && cell.m.counts_match;
          std::printf("%8zu %6d %6zu %8zu %12.4f %12.4f %8.1fx %s\n",
                      cell.rows, cell.preds, cell.batch, cell.queries,
                      cell.m.naive_seconds, cell.m.block_seconds,
                      cell.m.speedup(), cell.m.counts_match ? "ok" : "MISMATCH");
          grid.push_back(cell);
        }
      }
    }
    std::printf("\n");
  }

  // ---- categorical equality grid ----------------------------------------
  std::vector<CatCell> catgrid;
  if (run_catgrid) {
    std::printf(
        "categorical grid: equality-heavy Zipf workloads, rich synopsis "
        "(dict+bitmap) vs min/max-only baseline\n");
    std::printf("%8s %6s %8s %10s %10s %10s %9s %9s %11s %11s %s\n", "rows",
                "card", "queries", "naive_s", "zonemap_s", "rich_s",
                "vs_zone", "vs_naive", "zone_bytes", "rich_bytes", "match");
    for (size_t cardinality : {16u, 64u, 1024u}) {
      const CatCell cell = MeasureCatCell(
          cat_rows, cardinality, /*num_queries=*/256,
          /*seed=*/301 + cardinality);
      all_match = all_match && cell.counts_match;
      std::printf("%8zu %6zu %8zu %10.4f %10.4f %10.4f %8.1fx %8.1fx %11zu "
                  "%11zu %s\n",
                  cell.rows, cell.cardinality, cell.queries,
                  cell.naive_seconds, cell.zone_seconds, cell.rich_seconds,
                  cell.speedup_vs_zone(), cell.speedup_vs_naive(),
                  cell.zone_bytes, cell.rich_bytes,
                  cell.counts_match ? "ok" : "MISMATCH");
      catgrid.push_back(cell);
    }
    scan::ScanStats total;
    for (const CatCell& cell : catgrid) total.Add(cell.rich_stats);
    std::printf("rich-arm pruning: classified=%" PRIu64 " zone_skips=%" PRIu64
                " bitmap_skips=%" PRIu64 " histogram_skips=%" PRIu64
                " full=%" PRIu64 " scanned=%" PRIu64 " dict_kernel=%" PRIu64
                "\n\n",
                total.classified_blocks, total.zone_skips, total.bitmap_skips,
                total.histogram_skips, total.full_blocks,
                total.scanned_blocks, total.dict_kernel_blocks);
  }

  // ---- batch-labeling headline ------------------------------------------
  std::printf("headline: labeling %zu queries over %zu rows...\n",
              headline_queries, headline_rows);
  const Table table = MakeCensusLike(headline_rows, /*seed=*/11);
  const std::vector<Query> queries =
      GenerateQueries(table, headline_queries, /*seed=*/12);
  const Measurement headline =
      MeasureCell(table, queries, headline_queries);
  all_match = all_match && headline.counts_match;
  std::printf("naive  %.3f s\nblock  %.3f s\nspeedup %.1fx (%s)\n",
              headline.naive_seconds, headline.block_seconds,
              headline.speedup(), headline.counts_match ? "ok" : "MISMATCH");

  // ---- machine-readable artifact ----------------------------------------
  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"bench_micro_scan\",\n");
  std::fprintf(out, "  \"block_size\": %zu,\n", scan::kDefaultBlockSize);
  std::fprintf(out, "  \"workers\": %d,\n", ParallelWorkerCount());
  std::fprintf(out, "  \"headline\": {\"rows\": %zu, \"queries\": %zu, "
                    "\"naive_seconds\": %.6f, \"block_seconds\": %.6f, "
                    "\"speedup\": %.3f, \"counts_match\": %s},\n",
               headline_rows, headline_queries, headline.naive_seconds,
               headline.block_seconds, headline.speedup(),
               headline.counts_match ? "true" : "false");
  std::fprintf(out, "  \"grid\": [");
  for (size_t i = 0; i < grid.size(); ++i) {
    const GridCell& cell = grid[i];
    std::fprintf(out,
                 "%s\n    {\"rows\": %zu, \"preds\": %d, \"batch\": %zu, "
                 "\"queries\": %zu, \"naive_seconds\": %.6f, "
                 "\"block_seconds\": %.6f, \"speedup\": %.3f, "
                 "\"counts_match\": %s}",
                 i == 0 ? "" : ",", cell.rows, cell.preds, cell.batch,
                 cell.queries, cell.m.naive_seconds, cell.m.block_seconds,
                 cell.m.speedup(), cell.m.counts_match ? "true" : "false");
  }
  std::fprintf(out, "\n  ],\n");
  std::fprintf(out, "  \"categorical_grid\": [");
  for (size_t i = 0; i < catgrid.size(); ++i) {
    const CatCell& cell = catgrid[i];
    std::fprintf(
        out,
        "%s\n    {\"rows\": %zu, \"cardinality\": %zu, \"queries\": %zu, "
        "\"naive_seconds\": %.6f, \"zonemap_seconds\": %.6f, "
        "\"rich_seconds\": %.6f, \"speedup_vs_zonemap\": %.3f, "
        "\"speedup_vs_naive\": %.3f, \"zonemap_bytes\": %zu, "
        "\"rich_bytes\": %zu, \"bitmap_skips\": %" PRIu64
        ", \"zone_skips\": %" PRIu64 ", \"full_blocks\": %" PRIu64
        ", \"scanned_blocks\": %" PRIu64 ", \"dict_kernel_blocks\": %" PRIu64
        ", \"counts_match\": %s}",
        i == 0 ? "" : ",", cell.rows, cell.cardinality, cell.queries,
        cell.naive_seconds, cell.zone_seconds, cell.rich_seconds,
        cell.speedup_vs_zone(), cell.speedup_vs_naive(), cell.zone_bytes,
        cell.rich_bytes, cell.rich_stats.bitmap_skips,
        cell.rich_stats.zone_skips, cell.rich_stats.full_blocks,
        cell.rich_stats.scanned_blocks, cell.rich_stats.dict_kernel_blocks,
        cell.counts_match ? "true" : "false");
  }
  std::fprintf(out, "\n  ]\n}\n");
  std::fclose(out);
  std::printf("\nwrote %s\n", out_path.c_str());

  if (!all_match) {
    std::fprintf(stderr,
                 "FAILED: block-scan counts diverged from the naive "
                 "executor\n");
    return 1;
  }
  return 0;
}
