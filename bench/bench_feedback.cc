// Before/after benchmark of the serving-layer feedback loop (src/feedback/):
// for each base estimator, replays a fresh query stream through the
// EstimatorServer twice over — once scoring the frozen model directly
// (feedback off), once prequentially through the live loop, draining the
// asynchronous truth worker every few queries so learned residuals correct
// later answers. Reports median q-error before (frozen base), at the start
// of the corrected replay, and at the end, plus the improvement factor —
// the §5 adaptivity story as a load test instead of an invariant. Cells run
// through SweepContext (guarded + journaled), so a killed run resumes at
// the first missing cell, and estimators are built through the
// fault-injection plan like every other driver. Emits machine-readable
// BENCH_feedback.json (default at the repo root).
//
// Environment knobs (all optional):
//   ARECEL_FEEDBACK_BENCH_ROWS     table rows              (default 40000)
//   ARECEL_FEEDBACK_BENCH_QUERIES  replayed requests       (default 1000)
//   ARECEL_FEEDBACK_BENCH_POOL    distinct queries in the Zipf-repeating
//                                 request pool             (default 256)
//   ARECEL_FEEDBACK_BENCH_EST     comma-separated base estimators
//                                 (default postgres,sampling,feedback-knn)
//   ARECEL_FEEDBACK_BENCH_DRAIN   drain the truth worker every N queries
//                                 (default 25)
//   ARECEL_FEEDBACK_BENCH_OUT     output JSON path
//                                 (default <repo>/BENCH_feedback.json)
//   ARECEL_FEEDBACK_*             loop knobs (src/feedback/online_model.h)
//
//   --smoke                       tiny configuration for the CTest smoke run

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "core/evaluator.h"
#include "data/datasets.h"
#include "serve/server.h"
#include "util/random.h"
#include "util/stats.h"
#include "workload/generator.h"

namespace {

using namespace arecel;

size_t EnvSize(const char* name, size_t fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback
                      : static_cast<size_t>(std::strtoull(v, nullptr, 10));
}

std::string EnvString(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : std::string(v);
}

std::vector<std::string> SplitCommas(const std::string& text) {
  std::vector<std::string> parts;
  size_t at = 0;
  while (at <= text.size()) {
    const size_t comma = text.find(',', at);
    const size_t end = comma == std::string::npos ? text.size() : comma;
    if (end > at) parts.push_back(text.substr(at, end - at));
    if (comma == std::string::npos) break;
    at = comma + 1;
  }
  return parts;
}

// Shared cell inputs (SweepContext capture contract: the guarded body owns
// shared ownership, so an abandoned worker never dangles into main).
struct ReplayInputs {
  serve::EstimatorServer* server = nullptr;  // main-scope.
  std::string dataset;
  Workload pool;                 // distinct labelled queries.
  std::vector<size_t> requests;  // Zipf-repeating stream over the pool.
  size_t rows = 0;
  size_t drain_every = 25;
  size_t phases = 5;
};

struct CellResult {
  std::string estimator;
  double base_p50 = 0.0;      // frozen model, loop off, whole stream.
  double fb_p50 = 0.0;        // live loop, whole stream (same requests).
  double fb_first_p50 = 0.0;  // first replay phase through the live loop.
  double fb_last_p50 = 0.0;   // final replay phase.
  double improvement = 0.0;   // base_p50 / fb_p50.
  double truths = 0.0;        // truth jobs completed during the cell.
  double corrections = 0.0;   // Correct() calls that moved an estimate.
  bool from_journal = false;
  bool ok = false;
  std::string failure;
};

double MedianSlice(const std::vector<double>& values, size_t begin,
                   size_t end) {
  return Percentile(std::vector<double>(values.begin() + begin,
                                        values.begin() + end),
                    50.0);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;

  const size_t rows =
      EnvSize("ARECEL_FEEDBACK_BENCH_ROWS", smoke ? 3000 : 40000);
  const size_t num_queries =
      EnvSize("ARECEL_FEEDBACK_BENCH_QUERIES", smoke ? 150 : 1000);
  const size_t pool_size =
      EnvSize("ARECEL_FEEDBACK_BENCH_POOL", smoke ? 48 : 256);
  const size_t drain_every =
      EnvSize("ARECEL_FEEDBACK_BENCH_DRAIN", smoke ? 10 : 25);
  const std::vector<std::string> estimators = SplitCommas(EnvString(
      "ARECEL_FEEDBACK_BENCH_EST",
      smoke ? "postgres,feedback-knn" : "postgres,sampling,feedback-knn"));
  std::string out_path = ARECEL_REPO_ROOT "/BENCH_feedback.json";
  if (smoke) out_path = "BENCH_feedback_smoke.json";
  if (const char* env_out = std::getenv("ARECEL_FEEDBACK_BENCH_OUT"))
    out_path = env_out;

  bench::PrintHeader("bench_feedback: online feedback-loop replay",
                     "prequential q-error before/after the truth loop");

  serve::ServeOptions options = serve::ServeOptionsFromEnv();
  options.feedback_enabled = true;
  options.manager.factory = [](const std::string& name) {
    return bench::MakeBenchEstimator(name);
  };
  serve::EstimatorServer server(options);

  // Skewed two-column data with a strong correlation: the regime where the
  // independence-assuming baselines demonstrably err (§4), so the residual
  // loop has real error to correct — and with only two columns the
  // predicate subspaces repeat, which is what lets kNN feedback converge
  // inside one replay.
  server.RegisterDataset("synth-corr",
                         GenerateSynthetic2D(rows, /*skew=*/1.0,
                                             /*correlation=*/0.8,
                                             /*domain=*/64, /*seed=*/11));

  // The request stream repeats queries Zipf(1.0) over a fixed labelled
  // pool — the recurring-query pattern the AQO design assumes (a truth
  // learned for a query corrects its own later executions first, nearby
  // ones second). Repeats also route through the estimate cache, so the
  // cache-hit-still-learns path is load-tested here, not just unit-tested.
  auto inputs = std::make_shared<ReplayInputs>();
  inputs->server = &server;
  inputs->dataset = "synth-corr";
  inputs->rows = rows;
  inputs->drain_every = drain_every == 0 ? 1 : drain_every;
  {
    const auto table = server.manager().TableSnapshot("synth-corr");
    inputs->pool = GenerateWorkload(*table, pool_size, /*seed=*/23);
  }
  {
    Rng rng(/*seed=*/31);
    inputs->requests.reserve(num_queries);
    for (size_t i = 0; i < num_queries; ++i)
      inputs->requests.push_back(rng.Zipf(inputs->pool.size(), 1.0));
  }

  std::printf("rows=%zu requests=%zu pool=%zu drain_every=%zu k=%zu "
              "radius=%.2f\n\n",
              rows, num_queries, pool_size, inputs->drain_every,
              server.feedback()->options().neighbors,
              server.feedback()->options().trust_radius);

  bench::SweepContext sweep("bench_feedback");
  std::vector<CellResult> results;
  std::printf("%14s %10s %8s %14s %13s %12s %8s %12s %s\n", "estimator",
              "base_p50", "fb_p50", "fb_first_p50", "fb_last_p50",
              "improvement", "truths", "corrections", "status");
  for (const std::string& name : estimators) {
    CellResult result;
    result.estimator = name;
    auto status = sweep.RunCell(name, "replay", [inputs, name] {
      serve::EstimatorServer* server = inputs->server;
      std::string error;
      auto model = server->manager().GetModel(inputs->dataset, name, &error);
      if (model == nullptr)
        throw std::runtime_error("model load failed: " + error);

      const Workload& pool = inputs->pool;
      const std::vector<size_t>& requests = inputs->requests;
      const size_t rows = inputs->rows;

      // Before: the frozen model scored directly, no loop in the path; one
      // estimate per pool entry, replayed over the request stream.
      std::vector<double> pool_base_q(pool.size(), 0.0);
      {
        std::lock_guard<std::mutex> lock(model->inference_mutex);
        for (size_t i = 0; i < pool.size(); ++i) {
          bool invalid = false;
          pool_base_q[i] = ScoreEstimate(
              model->estimator->EstimateSelectivity(pool.queries[i]), rows,
              pool.Cardinality(i, rows), &invalid);
        }
      }
      std::vector<double> base_q;
      base_q.reserve(requests.size());
      for (size_t id : requests) base_q.push_back(pool_base_q[id]);

      // After: the same stream served through the live loop. Every answer
      // enqueues an exact-labeling job (repeats route through the estimate
      // cache but still learn); periodic drains let truths from earlier
      // requests correct later ones (prequential: each request is scored
      // before its own truth can possibly land).
      const auto before = server->Stats().feedback;
      std::vector<double> fb_q;
      fb_q.reserve(requests.size());
      for (size_t i = 0; i < requests.size(); ++i) {
        const size_t id = requests[i];
        const auto response =
            server->Estimate(inputs->dataset, name, pool.queries[id]);
        bool invalid = false;
        fb_q.push_back(ScoreEstimate(response.ok ? response.selectivity : -1.0,
                                     rows, pool.Cardinality(id, rows),
                                     &invalid));
        if ((i + 1) % inputs->drain_every == 0) server->DrainFeedback();
      }
      server->DrainFeedback();
      const auto after = server->Stats().feedback;

      const size_t phases = inputs->phases;
      const size_t phase_len = requests.size() / phases;
      // base_q and fb_q score the identical request sequence, so the
      // whole-stream medians are directly comparable (no query-mix
      // confound); the first/last phase medians show the convergence trend.
      const double base_p50 = Percentile(base_q, 50.0);
      const double fb_p50 = Percentile(fb_q, 50.0);
      const double fb_first = MedianSlice(fb_q, 0, phase_len);
      const double fb_last =
          MedianSlice(fb_q, (phases - 1) * phase_len, fb_q.size());
      return std::vector<std::pair<std::string, double>>{
          {"base_p50", base_p50},
          {"fb_p50", fb_p50},
          {"fb_first_p50", fb_first},
          {"fb_last_p50", fb_last},
          {"improvement", fb_p50 > 0 ? base_p50 / fb_p50 : 0.0},
          {"truths", static_cast<double>(after.worker.completed -
                                         before.worker.completed)},
          {"corrections", static_cast<double>(after.corrections_applied -
                                              before.corrections_applied)}};
    });
    result.ok = status.ok;
    result.from_journal = status.from_journal;
    result.failure = status.failure;
    for (const auto& [metric, value] : status.metrics) {
      if (metric == "base_p50") result.base_p50 = value;
      if (metric == "fb_p50") result.fb_p50 = value;
      if (metric == "fb_first_p50") result.fb_first_p50 = value;
      if (metric == "fb_last_p50") result.fb_last_p50 = value;
      if (metric == "improvement") result.improvement = value;
      if (metric == "truths") result.truths = value;
      if (metric == "corrections") result.corrections = value;
    }
    std::printf("%14s %10.3f %8.3f %14.3f %13.3f %11.2fx %8.0f %12.0f %s\n",
                name.c_str(), result.base_p50, result.fb_p50,
                result.fb_first_p50, result.fb_last_p50, result.improvement,
                result.truths, result.corrections,
                result.from_journal
                    ? "journal"
                    : (result.ok ? "" : result.failure.c_str()));
    results.push_back(result);
  }

  // Headline: the loop's before/after on the best-served base.
  const CellResult* best = nullptr;
  for (const CellResult& result : results)
    if (result.ok && (best == nullptr || result.improvement > best->improvement))
      best = &result;
  if (best != nullptr)
    std::printf("\nheadline: %s median q-error %.3f -> %.3f over the replay "
                "(%.2fx better with the loop on)\n",
                best->estimator.c_str(), best->base_p50, best->fb_p50,
                best->improvement);

  // ---- machine-readable artifact ----------------------------------------
  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  const auto stats = server.Stats();
  std::fprintf(out, "{\n  \"bench\": \"bench_feedback\",\n");
  std::fprintf(out, "  \"rows\": %zu,\n  \"requests\": %zu,\n", rows,
               num_queries);
  std::fprintf(out, "  \"pool\": %zu,\n  \"drain_every\": %zu,\n", pool_size,
               inputs->drain_every);
  std::fprintf(out, "  \"cells\": [");
  for (size_t i = 0; i < results.size(); ++i) {
    const CellResult& r = results[i];
    std::fprintf(out,
                 "%s\n    {\"estimator\": \"%s\", \"base_p50\": %.6f, "
                 "\"fb_p50\": %.6f, \"fb_first_p50\": %.6f, "
                 "\"fb_last_p50\": %.6f, \"improvement\": %.4f, "
                 "\"truths\": %.0f, \"corrections\": %.0f, \"ok\": %s}",
                 i == 0 ? "" : ",", r.estimator.c_str(), r.base_p50, r.fb_p50,
                 r.fb_first_p50, r.fb_last_p50, r.improvement, r.truths,
                 r.corrections, r.ok ? "true" : "false");
  }
  std::fprintf(out, "\n  ],\n");
  std::fprintf(out,
               "  \"loop\": {\"enqueued\": %llu, \"completed\": %llu, "
               "\"dropped\": %llu, \"cache_hit_jobs\": %llu, "
               "\"corrections_applied\": %llu, "
               "\"corrections_passthrough\": %llu, \"subspaces\": %zu, "
               "\"entries\": %zu}\n}\n",
               (unsigned long long)stats.feedback.worker.enqueued,
               (unsigned long long)stats.feedback.worker.completed,
               (unsigned long long)stats.feedback.worker.dropped,
               (unsigned long long)stats.feedback.cache_hit_jobs,
               (unsigned long long)stats.feedback.corrections_applied,
               (unsigned long long)stats.feedback.corrections_passthrough,
               stats.feedback.models.subspaces, stats.feedback.models.entries);
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());

  return sweep.Finish();
}
