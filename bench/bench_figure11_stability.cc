// Reproduces Figure 11: the spread of Naru's estimates when the same query
// runs many times, on the synthetic dataset with a functional dependency
// (s = 0, c = 1, d = 1000). Progressive sampling makes inference stochastic;
// under functional dependency the sampled conditional masses have high
// variance, so repeated runs scatter widely.

#include <algorithm>
#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "data/datasets.h"
#include "estimators/learned/naru.h"
#include "robustness/fault_injector.h"
#include "util/ascii_table.h"
#include "util/stats.h"
#include "workload/generator.h"

int main() {
  using namespace arecel;
  bench::PrintHeader("Figure 11: Naru repeated-estimate distribution",
                     "Figure 11 (Section 6.3)");

  const size_t rows =
      static_cast<size_t>(100000 * std::max(0.2, bench::BenchScale()));
  const Table table = GenerateSynthetic2D(rows, /*skew=*/0.0,
                                          /*correlation=*/1.0,
                                          /*domain_size=*/1000, /*seed=*/5);

  // The paper's probe: a wide range on the first column combined with a
  // narrow range on the (functionally dependent) second column.
  Query query;
  query.predicates.push_back({0, 100.0, 900.0});
  query.predicates.push_back({1, 480.0, 500.0});
  const double actual = static_cast<double>(ExecuteCount(table, query));

  const int repeats = 2000;
  bench::CellGuard guard;
  auto estimates = std::make_shared<std::vector<double>>();
  const bool ok = guard.Run(
      "naru x repeated-estimates", [estimates, query, repeats, &table] {
        NaruEstimator::Options options;
        options.epochs = 10;
        auto naru = robust::WrapWithFaults(
            std::make_unique<NaruEstimator>(options),
            robust::FaultPlanFromEnv());
        TrainContext context;
        naru->Train(table, context);
        estimates->reserve(repeats);
        for (int i = 0; i < repeats; ++i)
          estimates->push_back(
              naru->EstimateCardinality(query, table.num_rows()));
      });

  if (ok) {
    std::printf("query: %s\nactual cardinality: %.0f\n",
                query.ToString(table).c_str(), actual);
    const BoxStats box = Box(*estimates);
    std::printf("estimates over %d runs: min=%.0f q1=%.0f median=%.0f "
                "q3=%.0f max=%.0f (stddev=%.0f)\n",
                repeats, box.min, box.q1, box.median, box.q3, box.max,
                StdDev(*estimates));

    // Histogram of the estimate distribution.
    AsciiTable out({"estimate bucket", "count", "bar"});
    const double hi =
        *std::max_element(estimates->begin(), estimates->end());
    const int bins = 12;
    std::vector<int> counts(bins, 0);
    for (double e : *estimates) {
      int b = static_cast<int>(e / (hi + 1e-9) * bins);
      ++counts[std::clamp(b, 0, bins - 1)];
    }
    for (int b = 0; b < bins; ++b) {
      char label[64];
      std::snprintf(label, sizeof(label), "[%6.0f, %6.0f)", hi * b / bins,
                    hi * (b + 1) / bins);
      out.AddRow({label, std::to_string(counts[b]),
                  std::string(static_cast<size_t>(counts[b] * 60 / repeats),
                              '#')});
    }
    std::printf("%s", out.ToString().c_str());
  }

  bench::PrintPaperExpectation(
      "The paper observes estimates for a query with true cardinality 1036 "
      "spread over [0, 5992] across 2000 runs. The reproduction should show "
      "a similarly wide, multi-modal spread (max estimate several times the "
      "actual), demonstrating the stability-rule violation.");
  return guard.Finish();
}
