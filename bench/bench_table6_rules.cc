// Reproduces Table 6: which of the five logical rules (monotonicity,
// consistency, stability, fidelity-A, fidelity-B) each learned estimator
// satisfies natively.

#include <cstdio>
#include <map>
#include <memory>

#include "bench_common.h"
#include "core/registry.h"
#include "core/rules.h"
#include "data/datasets.h"
#include "util/ascii_table.h"
#include "workload/generator.h"

int main() {
  using namespace arecel;
  bench::PrintHeader("Table 6: satisfaction/violation of logical rules",
                     "Table 6 (Section 6.3)");
  bench::SweepContext sweep("bench_table6_rules");

  // A multi-column table gives the rule prober far more distinct probes
  // (range shrinks and whole-domain combinations) than the 2-column
  // micro-benchmark table would.
  DatasetSpec spec = CensusSpec();
  spec.rows = static_cast<size_t>(
      static_cast<double>(spec.rows) * std::max(0.2, bench::BenchScale()));
  const Table table = GenerateDataset(spec, 3);
  const Workload train = GenerateWorkload(table, 1500, 31);

  // Paper's verdicts, for the comparison column.
  const std::map<std::string, std::string> paper = {
      {"naru", "x x x / /"},   {"mscn", "x x / x x"},
      {"lw-xgb", "x x / x x"}, {"lw-nn", "x x / x x"},
      {"deepdb", "/ / / / /"}};

  AsciiTable out({"estimator", "monotonic", "consistent", "stable",
                  "fidelity-A", "fidelity-B", "paper(M C S FA FB)"});
  for (const std::string& name : LearnedEstimatorNames()) {
    // `name` by value (loop-scoped); table/train by reference is safe only
    // because they are main-scoped and Finish() never tears them down under
    // an abandoned worker (see CellGuard contract in bench_common.h).
    const auto status = sweep.RunCell(name, "rules", [name, &table, &train] {
      std::unique_ptr<CardinalityEstimator> estimator =
          bench::MakeBenchEstimator(name);
      TrainContext context;
      context.training_workload = &train;
      estimator->Train(table, context);
      RuleCheckOptions rule_options;
      rule_options.trials = 300;  // monotonicity violations can be rare.
      const std::vector<RuleResult> rules =
          CheckLogicalRules(*estimator, table, rule_options);
      std::vector<std::pair<std::string, double>> metrics;
      for (size_t r = 0; r < rules.size(); ++r) {
        metrics.push_back({"v" + std::to_string(r),
                           static_cast<double>(rules[r].violations)});
        metrics.push_back({"t" + std::to_string(r),
                           static_cast<double>(rules[r].trials)});
      }
      return metrics;
    });
    std::vector<std::string> row{name};
    if (!status.ok) {
      for (int r = 0; r < 5; ++r) row.push_back("-");
      row.push_back("FAILED " + status.failure);
      out.AddRow(row);
      continue;
    }
    const auto metric = [&](const std::string& key) {
      for (const auto& [k, v] : status.metrics)
        if (k == key) return v;
      return 0.0;
    };
    for (int r = 0; r < 5; ++r) {
      const size_t violations =
          static_cast<size_t>(metric("v" + std::to_string(r)));
      const size_t trials =
          static_cast<size_t>(metric("t" + std::to_string(r)));
      char cell[64];
      if (violations == 0) {
        std::snprintf(cell, sizeof(cell), "ok");
      } else {
        std::snprintf(cell, sizeof(cell), "VIOLATED (%zu/%zu)", violations,
                      trials);
      }
      row.push_back(cell);
    }
    row.push_back(paper.at(name));
    out.AddRow(row);
  }
  std::printf("%s", out.ToString().c_str());

  bench::PrintPaperExpectation(
      "DeepDB satisfies all five rules (sums/products over histograms); the "
      "regression methods (MSCN, LW-XGB, LW-NN) violate everything except "
      "stability; Naru's stochastic progressive sampling violates "
      "monotonicity, consistency and stability but satisfies both fidelity "
      "rules.");
  return sweep.Finish();
}
