// Reproduces Table 6: which of the five logical rules (monotonicity,
// consistency, stability, fidelity-A, fidelity-B) each learned estimator
// satisfies natively.

#include <cstdio>
#include <map>
#include <memory>

#include "bench_common.h"
#include "core/registry.h"
#include "core/rules.h"
#include "data/datasets.h"
#include "util/ascii_table.h"
#include "workload/generator.h"

int main() {
  using namespace arecel;
  bench::PrintHeader("Table 6: satisfaction/violation of logical rules",
                     "Table 6 (Section 6.3)");

  // A multi-column table gives the rule prober far more distinct probes
  // (range shrinks and whole-domain combinations) than the 2-column
  // micro-benchmark table would.
  DatasetSpec spec = CensusSpec();
  spec.rows = static_cast<size_t>(
      static_cast<double>(spec.rows) * std::max(0.2, bench::BenchScale()));
  const Table table = GenerateDataset(spec, 3);
  const Workload train = GenerateWorkload(table, 1500, 31);

  // Paper's verdicts, for the comparison column.
  const std::map<std::string, std::string> paper = {
      {"naru", "x x x / /"},   {"mscn", "x x / x x"},
      {"lw-xgb", "x x / x x"}, {"lw-nn", "x x / x x"},
      {"deepdb", "/ / / / /"}};

  AsciiTable out({"estimator", "monotonic", "consistent", "stable",
                  "fidelity-A", "fidelity-B", "paper(M C S FA FB)"});
  for (const std::string& name : LearnedEstimatorNames()) {
    std::unique_ptr<CardinalityEstimator> estimator = MakeEstimator(name);
    TrainContext context;
    context.training_workload = &train;
    estimator->Train(table, context);
    RuleCheckOptions rule_options;
    rule_options.trials = 300;  // monotonicity violations can be rare.
    const std::vector<RuleResult> rules =
        CheckLogicalRules(*estimator, table, rule_options);
    std::vector<std::string> row{name};
    for (const RuleResult& rule : rules) {
      char cell[64];
      if (rule.satisfied()) {
        std::snprintf(cell, sizeof(cell), "ok");
      } else {
        std::snprintf(cell, sizeof(cell), "VIOLATED (%zu/%zu)",
                      rule.violations, rule.trials);
      }
      row.push_back(cell);
    }
    row.push_back(paper.at(name));
    out.AddRow(row);
  }
  std::printf("%s", out.ToString().c_str());

  bench::PrintPaperExpectation(
      "DeepDB satisfies all five rules (sums/products over histograms); the "
      "regression methods (MSCN, LW-XGB, LW-NN) violate everything except "
      "stability; Naru's stochastic progressive sampling violates "
      "monotonicity, consistency and stability but satisfies both fidelity "
      "rules.");
  return 0;
}
