// Reproduces Table 4: estimation q-errors (50th/95th/99th/max) of eight
// traditional and five learned estimators on the four benchmark datasets,
// plus the "L v.s. T" learned-vs-traditional verdict row per dataset.
//
// Runs under the fault-tolerant sweep harness: each (estimator, dataset)
// cell is guarded (deadline, retry, fallback), completed cells are
// journaled so an interrupted or partially failed run resumes executing
// only the missing cells, and the binary exits non-zero only after all
// remaining cells completed.

#include <cstdio>
#include <map>
#include <memory>

#include "bench_common.h"
#include "core/evaluator.h"
#include "core/registry.h"
#include "util/ascii_table.h"

int main() {
  using namespace arecel;
  bench::PrintHeader("Table 4: estimation errors on four datasets",
                     "Table 4 (Section 4.2)");
  bench::SweepContext sweep("bench_table4_accuracy");

  const std::vector<Table> datasets = bench::LoadBenchmarkDatasets();
  const std::vector<std::string> traditional = TraditionalEstimatorNames();
  const std::vector<std::string> learned = LearnedEstimatorNames();

  for (const Table& table : datasets) {
    std::printf("\n--- dataset %s (%zu rows, %zu cols) ---\n",
                table.name().c_str(), table.num_rows(), table.num_cols());
    const Workload train =
        GenerateWorkload(table, bench::BenchTrainQueryCount(), 1001);
    const Workload test =
        GenerateWorkload(table, bench::BenchQueryCount(), 2002);

    AsciiTable out({"estimator", "50th", "95th", "99th", "max", "status"});
    std::map<std::string, EstimatorReport> reports;
    auto run_group = [&](const std::vector<std::string>& names) {
      for (const std::string& name : names) {
        const EstimatorReport report =
            sweep.EvaluateCell(name, table, train, test);
        reports[name] = report;
        if (report.served_by.empty()) {
          out.AddRow({name, "-", "-", "-", "-",
                      bench::SweepContext::StatusLabel(report)});
        } else {
          out.AddRow({name, FormatCompact(report.qerror.p50),
                      FormatCompact(report.qerror.p95),
                      FormatCompact(report.qerror.p99),
                      FormatCompact(report.qerror.max),
                      bench::SweepContext::StatusLabel(report)});
        }
      }
    };
    out.AddRow({"[traditional]", "", "", "", "", ""});
    run_group(traditional);
    out.AddRow({"[learned]", "", "", "", "", ""});
    run_group(learned);

    // Verdict row: does the best learned beat the best traditional?
    // Failed cells are excluded — a hung model must not decide the verdict.
    auto best_of = [&](const std::vector<std::string>& names, auto member) {
      double best = 1e300;
      for (const auto& name : names) {
        if (!reports[name].ok()) continue;
        best = std::min(best, reports[name].qerror.*member);
      }
      return best;
    };
    std::vector<std::string> verdict{"L v.s. T"};
    for (auto member : {&QuantileSummary::p50, &QuantileSummary::p95,
                        &QuantileSummary::p99, &QuantileSummary::max}) {
      const double l = best_of(learned, member);
      const double t = best_of(traditional, member);
      verdict.push_back(l <= t ? "win" : "lose");
    }
    verdict.push_back("");
    out.AddRow(verdict);
    std::printf("%s", out.ToString().c_str());
  }

  bench::PrintPaperExpectation(
      "Learned methods win in almost all cells; Naru is the most robust "
      "(max q-error stays smallest); LW-XGB has the best mid-quantiles "
      "among query-driven methods; DBMS estimators show the largest max "
      "errors.");
  return sweep.Finish();
}
