// Reproduces Figure 6: 99th-percentile q-error of learned methods vs DBMSs
// in dynamic environments with high/medium/low update frequency.
//
// Setup per §5.1: append 20% new data whose per-column sort maximizes
// cross-column Spearman correlation (so the stale model degrades), test
// with 10K queries over the updated table uniformly spread across [0, T];
// queries before the update finishes hit the stale model. T values are
// scaled to this box's CPU (the paper uses minutes on a 16-core server).

#include <algorithm>
#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "core/dynamic.h"
#include "core/registry.h"
#include "data/datasets.h"
#include "util/ascii_table.h"
#include "util/stats.h"

int main() {
  using namespace arecel;
  bench::PrintHeader("Figure 6: dynamic environments, 99th q-error vs T",
                     "Figure 6 (Section 5.2)");

  bench::CellGuard guard;

  const std::vector<std::string> names = {"postgres", "mysql",  "dbms-a",
                                          "mscn",     "lw-xgb", "lw-nn",
                                          "naru",     "deepdb"};
  for (const Table& base : bench::LoadBenchmarkDatasets()) {
    // Shared bundle captured by value in every guarded body: a timed-out
    // worker is abandoned and must not dangle into this dataset iteration.
    auto data = std::make_shared<bench::DynamicInputs>();
    data->base = base;
    data->updated = AppendCorrelatedUpdate(base, 0.20, 99);
    data->initial_train =
        GenerateWorkload(data->base, bench::BenchTrainQueryCount(), 1001);
    data->test =
        GenerateWorkload(data->updated, bench::BenchQueryCount(), 2002);

    // Profile every estimator once (profiles separate the measured update
    // from the interval mixture), then pick T relative to the slowest
    // learned update so the "cannot catch up" regime is visible: at T=high
    // the slow methods miss the window, at T=low everyone finishes — the
    // paper's high/medium/low update frequencies.
    // Cells feed the shared interval computation below, so they are not
    // journaled — but each runs guarded, and a hung or throwing estimator
    // drops out of this dataset's table instead of killing the figure.
    std::vector<DynamicProfile> profiles;
    double max_learned_tu = 0.0;
    for (const std::string& name : names) {
      auto cell = std::make_shared<DynamicProfile>();
      const bool ok = guard.Run(
          name + " x " + base.name(),
          [data, cell, name] {
            std::unique_ptr<CardinalityEstimator> estimator =
                bench::MakeBenchEstimator(name);
            TrainContext train_context;
            train_context.training_workload = &data->initial_train;
            estimator->Train(data->base, train_context);
            DynamicOptions options;
            options.update_query_count = bench::BenchTrainQueryCount() / 2;
            *cell = ProfileDynamicUpdate(*estimator, data->updated,
                                         data->base.num_rows(), data->test,
                                         options);
          });
      if (!ok) continue;
      profiles.push_back(*cell);
      if (name != "postgres" && name != "mysql" && name != "dbms-a")
        max_learned_tu = std::max(max_learned_tu,
                                  profiles.back().update_seconds);
    }
    const std::vector<double> intervals = {0.5 * max_learned_tu,
                                           1.5 * max_learned_tu,
                                           8.0 * max_learned_tu};
    std::printf("\n--- dataset %s (%zu -> %zu rows; T = %.2fs / %.2fs / "
                "%.2fs) ---\n",
                base.name().c_str(), base.num_rows(),
                data->updated.num_rows(),
                intervals[0], intervals[1], intervals[2]);

    AsciiTable out({"estimator", "t_u (s)", "T=high", "T=medium", "T=low",
                    "stale p99", "updated p99"});
    for (const DynamicProfile& profile : profiles) {
      std::vector<std::string> row{profile.estimator,
                                   FormatFixed(profile.update_seconds, 2)};
      for (double t : intervals) {
        if (!FinishedInTime(profile, t)) {
          row.push_back("x (" + FormatCompact(DynamicP99(profile, t)) + ")");
        } else {
          row.push_back(FormatCompact(DynamicP99(profile, t)));
        }
      }
      row.push_back(FormatCompact(Percentile(profile.stale_errors, 99)));
      row.push_back(FormatCompact(Percentile(profile.updated_errors, 99)));
      out.AddRow(row);
    }
    std::printf("%s", out.ToString().c_str());
  }

  std::printf("\n\"x\" marks updates that do not finish within T (the whole "
              "stream is answered by the stale model).\n");
  bench::PrintPaperExpectation(
      "DBMSs are stable across T (statistics refresh in seconds). Learned "
      "methods cannot catch up at high update frequency; LW-XGB is best or "
      "competitive among learned methods at high/medium frequency; Naru "
      "catches up only at low frequency; DeepDB updates fastest among "
      "data-driven methods but its incrementally updated model misses the "
      "correlation change.");
  return guard.Finish();
}
