// Reproduces Figure 10: top-1% q-error distribution of the five learned
// estimators as the synthetic domain size d grows through {10, 100, 1000,
// 10000}, at s = 1.0 and c = 1.0.

#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "core/registry.h"
#include "data/datasets.h"
#include "util/ascii_table.h"
#include "util/stats.h"
#include "workload/generator.h"

int main() {
  using namespace arecel;
  bench::PrintHeader("Figure 10: top-1% q-error vs domain size",
                     "Figure 10 (Section 6.2)");
  bench::SweepContext sweep("bench_figure10_domain");

  const size_t rows = static_cast<size_t>(
      100000 * std::max(0.2, bench::BenchScale()));
  WorkloadOptions workload_options;
  workload_options.ood_probability = 1.0;

  for (const std::string& name : LearnedEstimatorNames()) {
    AsciiTable out({"domain d", "q1", "median", "q3", "max"});
    for (int d : {10, 100, 1000, 10000}) {
      const std::string cell_key = "domain=" + std::to_string(d);
      // Value captures only: after a timeout the abandoned worker outlives
      // this loop iteration (d) and even main's frame (see RunCell).
      const auto status = sweep.RunCell(name, cell_key,
                                        [rows, d, workload_options, name] {
        const Table table = GenerateSynthetic2D(rows, /*skew=*/1.0,
                                                /*correlation=*/1.0, d, 42);
        const Workload train =
            GenerateWorkload(table, 1500, 7, workload_options);
        const Workload test =
            GenerateWorkload(table, bench::BenchQueryCount(), 8,
                             workload_options);
        std::unique_ptr<CardinalityEstimator> estimator =
            bench::MakeBenchEstimator(name);
        TrainContext context;
        context.training_workload = &train;
        estimator->Train(table, context);
        const std::vector<double> top = TopFraction(
            EvaluateQErrors(*estimator, test, table.num_rows()), 0.01);
        const BoxStats box = Box(top);
        return std::vector<std::pair<std::string, double>>{
            {"q1", box.q1}, {"median", box.median}, {"q3", box.q3},
            {"max", box.max}};
      });
      if (!status.ok) {
        out.AddRow({std::to_string(d), "-", "-", "-",
                    "FAILED " + status.failure});
        continue;
      }
      const auto metric = [&](const char* key) {
        for (const auto& [k, v] : status.metrics)
          if (k == key) return v;
        return 0.0;
      };
      out.AddRow({std::to_string(d), FormatCompact(metric("q1")),
                  FormatCompact(metric("median")),
                  FormatCompact(metric("q3")),
                  FormatCompact(metric("max"))});
    }
    std::printf("\n--- %s ---\n%s", name.c_str(), out.ToString().c_str());
  }

  bench::PrintPaperExpectation(
      "All methods except LW-NN degrade as the domain grows; Naru loses the "
      "most from 1K to 10K (its per-value resolution no longer fits the "
      "size budget — here via vocabulary binning, in the paper via the "
      "embedding matrix squeeze); LW-XGB is strongest at d = 10 and ~100x "
      "worse at large domains; MSCN and DeepDB degrade ~10x.");
  return sweep.Finish();
}
