// Ablation: Naru's progressive-sampling path count and vocabulary cap —
// the accuracy/latency/size trade-offs behind §4.3's inference-cost
// discussion and Figure 10's domain-size squeeze.

#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "core/estimator.h"
#include "data/datasets.h"
#include "estimators/learned/naru.h"
#include "robustness/fault_injector.h"
#include "util/ascii_table.h"
#include "util/stats.h"
#include "util/timer.h"
#include "workload/generator.h"

int main() {
  using namespace arecel;
  bench::PrintHeader("Ablation: Naru sampling paths and vocabulary cap",
                     "Naru design choices (Sections 4.3, 6.2)");

  DatasetSpec spec = CensusSpec();
  spec.rows = static_cast<size_t>(
      static_cast<double>(spec.rows) * bench::BenchScale());
  const Table table = GenerateDataset(spec, 2021);
  const Workload test =
      GenerateWorkload(table, bench::BenchQueryCount(), 2002);

  bench::CellGuard guard;

  // --- Progressive-sampling path count: variance vs latency. ---
  {
    NaruEstimator::Options options;
    options.epochs = 12;
    AsciiTable out({"paths", "50th", "99th", "max", "ms/query"});
    for (int paths : {8, 32, 128, 512}) {
      // Re-point the sampler without changing the model: same seed and
      // data fit the same network, only sample_count differs.
      NaruEstimator::Options probe_options = options;
      probe_options.sample_count = paths;
      struct Cell {
        QuantileSummary s;
        double ms = 0.0;
      };
      auto cell = std::make_shared<Cell>();
      const bool ok = guard.Run(
          "naru x paths=" + std::to_string(paths),
          [cell, probe_options, &table, &test] {
            auto probe = robust::WrapWithFaults(
                std::make_unique<NaruEstimator>(probe_options),
                robust::FaultPlanFromEnv());
            probe->Train(table, {});
            Timer timer;
            cell->s =
                Summarize(EvaluateQErrors(*probe, test, table.num_rows()));
            cell->ms =
                timer.ElapsedMillis() / static_cast<double>(test.size());
          });
      if (ok) {
        out.AddRow({std::to_string(paths), FormatCompact(cell->s.p50),
                    FormatCompact(cell->s.p99), FormatCompact(cell->s.max),
                    FormatFixed(cell->ms, 2)});
      } else {
        out.AddRow({std::to_string(paths), "-", "-", "-", "FAILED"});
      }
    }
    std::printf("\nprogressive-sampling paths (same trained model):\n%s",
                out.ToString().c_str());
  }

  // --- Vocabulary cap on a large-domain synthetic column. ---
  {
    // Shared copies for the guarded bodies: this block ends before main
    // does, so an abandoned worker would otherwise dangle into it.
    const auto wide = std::make_shared<const Table>(GenerateSynthetic2D(
        static_cast<size_t>(80000 * std::max(0.2, bench::BenchScale())),
        /*skew=*/1.0, /*correlation=*/1.0, /*domain_size=*/10000, 42));
    WorkloadOptions ood;
    ood.ood_probability = 1.0;
    const auto wide_test = std::make_shared<const Workload>(
        GenerateWorkload(*wide, 400, 7, ood));
    AsciiTable out({"max vocab", "model KB", "50th", "99th", "max"});
    for (int vocab : {32, 128, 512, 2048}) {
      NaruEstimator::Options options;
      options.epochs = 10;
      options.max_vocab = vocab;
      struct Cell {
        QuantileSummary s;
        double kb = 0.0;
      };
      auto cell = std::make_shared<Cell>();
      const bool ok = guard.Run(
          "naru x vocab=" + std::to_string(vocab),
          [cell, options, wide, wide_test] {
            auto naru = robust::WrapWithFaults(
                std::make_unique<NaruEstimator>(options),
                robust::FaultPlanFromEnv());
            naru->Train(*wide, {});
            cell->kb = static_cast<double>(naru->SizeBytes()) / 1024.0;
            cell->s = Summarize(
                EvaluateQErrors(*naru, *wide_test, wide->num_rows()));
          });
      if (ok) {
        out.AddRow({std::to_string(vocab), FormatFixed(cell->kb, 0),
                    FormatCompact(cell->s.p50), FormatCompact(cell->s.p99),
                    FormatCompact(cell->s.max)});
      } else {
        out.AddRow({std::to_string(vocab), "-", "-", "-", "FAILED"});
      }
    }
    std::printf("\nvocabulary cap on a d=10000 column (s=1, c=1):\n%s",
                out.ToString().c_str());
  }

  bench::PrintPaperExpectation(
      "More sampling paths shrink tail error at linear latency cost "
      "(Naru's inference bottleneck is the sequential per-column "
      "dependency). A tighter vocabulary cap shrinks the model but costs "
      "resolution on large domains — the Figure 10 squeeze.");
  return guard.Finish();
}
