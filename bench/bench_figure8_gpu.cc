// Reproduces Figure 8: how much the (simulated) GPU helps Naru and LW-NN in
// dynamic environments, on Forest and DMV.

#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "core/device.h"
#include "core/dynamic.h"
#include "core/registry.h"
#include "data/datasets.h"
#include "util/ascii_table.h"
#include "util/stats.h"

int main() {
  using namespace arecel;
  bench::PrintHeader("Figure 8: GPU effect in dynamic environments",
                     "Figure 8 (Section 5.4)");

  bench::CellGuard guard;

  std::vector<DatasetSpec> specs = {ForestSpec(), DmvSpec()};
  for (DatasetSpec& spec : specs) {
    spec.rows = static_cast<size_t>(
        static_cast<double>(spec.rows) * bench::BenchScale());
    // Shared bundle captured by value in every guarded body: a timed-out
    // worker is abandoned and must not dangle into this dataset iteration.
    auto data = std::make_shared<bench::DynamicInputs>();
    data->base = GenerateDataset(spec, 2021);
    data->updated = AppendCorrelatedUpdate(data->base, 0.20, 99);
    data->initial_train =
        GenerateWorkload(data->base, bench::BenchTrainQueryCount(), 1001);
    data->test =
        GenerateWorkload(data->updated, bench::BenchQueryCount(), 2002);
    const double interval =
        static_cast<double>(data->updated.num_rows()) / 50000.0 * 25.0;
    std::printf("\n--- dataset %s (T = %.1fs) ---\n", spec.name.c_str(),
                interval);

    AsciiTable out({"estimator", "device", "t_u (s)", "dynamic p99"});
    for (const std::string& name : {std::string("naru"),
                                    std::string("lw-nn")}) {
      for (Device device : {Device::kCpu, Device::kGpu}) {
        auto profile = std::make_shared<DynamicProfile>();
        const bool ok = guard.Run(
            name + " x " + DeviceLabel(device) + " x " + spec.name,
            [data, profile, name, device] {
              std::unique_ptr<CardinalityEstimator> estimator =
                  bench::MakeBenchEstimator(name);
              TrainContext train_context;
              train_context.training_workload = &data->initial_train;
              estimator->Train(data->base, train_context);
              DynamicOptions options;
              options.device = device;
              options.update_query_count = bench::BenchTrainQueryCount() / 2;
              *profile = ProfileDynamicUpdate(*estimator, data->updated,
                                              data->base.num_rows(),
                                              data->test, options);
            });
        if (!ok) {
          out.AddRow({name, DeviceLabel(device), "-", "FAILED"});
          continue;
        }
        out.AddRow({name, DeviceLabel(device),
                    FormatFixed(profile->update_seconds, 2),
                    FormatCompact(DynamicP99(*profile, interval))});
      }
    }
    std::printf("%s", out.ToString().c_str());
  }

  std::printf("\ngpu(sim) divides the model-update time by the per-method "
              "speedup factors of core/device.h (DESIGN.md §2, "
              "substitution 4).\n");
  bench::PrintPaperExpectation(
      "LW-NN improves ~10x on Forest and ~2x on DMV with GPU (faster "
      "training lets a well-trained model answer more of the stream). Naru "
      "improves ~2x on DMV but not on Forest, where one update epoch is too "
      "few for a good updated model no matter how fast it runs.");
  return guard.Finish();
}
