// Ablation: DeepDB's structure-learning knobs — the RDC threshold (when do
// columns count as independent?) and the minimum instance slice (when does
// recursion stop?), the two hyper-parameters the paper grid-searches (§3).

#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "core/estimator.h"
#include "data/datasets.h"
#include "estimators/learned/deepdb.h"
#include "robustness/fault_injector.h"
#include "util/ascii_table.h"
#include "util/stats.h"
#include "util/timer.h"
#include "workload/generator.h"

int main() {
  using namespace arecel;
  bench::PrintHeader("Ablation: DeepDB RDC threshold and min instance slice",
                     "DeepDB hyper-parameters (Section 3)");

  DatasetSpec spec = PowerSpec();
  spec.rows = static_cast<size_t>(
      static_cast<double>(spec.rows) * bench::BenchScale() * 0.5);
  const Table table = GenerateDataset(spec, 2021);
  const Workload test =
      GenerateWorkload(table, bench::BenchQueryCount(), 2002);

  bench::CellGuard guard;
  AsciiTable out({"rdc thr", "min slice", "sum", "prod", "leaf",
                  "train s", "50th", "99th", "max"});
  for (double threshold : {0.1, 0.3, 0.7}) {
    for (double slice : {0.003, 0.01, 0.1}) {
      DeepDbEstimator::Options options;
      options.rdc_threshold = threshold;
      options.min_instance_fraction = slice;
      struct Cell {
        DeepDbEstimator::NodeCounts counts;
        double train_s = 0.0;
        QuantileSummary s;
      };
      auto cell = std::make_shared<Cell>();
      char label[64];
      std::snprintf(label, sizeof(label), "deepdb x rdc=%.1f slice=%.3f",
                    threshold, slice);
      const bool ok = guard.Run(label, [cell, options, &table, &test] {
        // Keep a typed handle for CountNodes(); the fault wrapper owns the
        // estimator and forwards Train/Estimate through it.
        auto deepdb = std::make_unique<DeepDbEstimator>(options);
        DeepDbEstimator* raw = deepdb.get();
        auto estimator = robust::WrapWithFaults(std::move(deepdb),
                                                robust::FaultPlanFromEnv());
        Timer timer;
        estimator->Train(table, {});
        cell->train_s = timer.ElapsedSeconds();
        cell->counts = raw->CountNodes();
        cell->s =
            Summarize(EvaluateQErrors(*estimator, test, table.num_rows()));
      });
      if (ok) {
        out.AddRow({FormatFixed(threshold, 1), FormatFixed(slice, 3),
                    std::to_string(cell->counts.sum),
                    std::to_string(cell->counts.product),
                    std::to_string(cell->counts.leaf),
                    FormatFixed(cell->train_s, 1), FormatCompact(cell->s.p50),
                    FormatCompact(cell->s.p99), FormatCompact(cell->s.max)});
      } else {
        out.AddRow({FormatFixed(threshold, 1), FormatFixed(slice, 3), "-",
                    "-", "-", "-", "-", "-", "FAILED"});
      }
    }
  }
  std::printf("%s", out.ToString().c_str());

  bench::PrintPaperExpectation(
      "A lower RDC threshold keeps dependent columns together (more sum "
      "nodes, bigger/slower models, better tails); a large minimum slice "
      "prunes the recursion toward per-column independence (smaller, "
      "faster, less accurate) — the accuracy/size trade the paper's grid "
      "search navigates under the 1.5% budget.");
  return guard.Finish();
}
