// Ablation: DeepDB's structure-learning knobs — the RDC threshold (when do
// columns count as independent?) and the minimum instance slice (when does
// recursion stop?), the two hyper-parameters the paper grid-searches (§3).

#include <cstdio>

#include "bench_common.h"
#include "core/estimator.h"
#include "data/datasets.h"
#include "estimators/learned/deepdb.h"
#include "util/ascii_table.h"
#include "util/stats.h"
#include "util/timer.h"
#include "workload/generator.h"

int main() {
  using namespace arecel;
  bench::PrintHeader("Ablation: DeepDB RDC threshold and min instance slice",
                     "DeepDB hyper-parameters (Section 3)");

  DatasetSpec spec = PowerSpec();
  spec.rows = static_cast<size_t>(
      static_cast<double>(spec.rows) * bench::BenchScale() * 0.5);
  const Table table = GenerateDataset(spec, 2021);
  const Workload test =
      GenerateWorkload(table, bench::BenchQueryCount(), 2002);

  AsciiTable out({"rdc thr", "min slice", "sum", "prod", "leaf",
                  "train s", "50th", "99th", "max"});
  for (double threshold : {0.1, 0.3, 0.7}) {
    for (double slice : {0.003, 0.01, 0.1}) {
      DeepDbEstimator::Options options;
      options.rdc_threshold = threshold;
      options.min_instance_fraction = slice;
      DeepDbEstimator deepdb(options);
      Timer timer;
      deepdb.Train(table, {});
      const double train_seconds = timer.ElapsedSeconds();
      const DeepDbEstimator::NodeCounts counts = deepdb.CountNodes();
      const QuantileSummary s =
          Summarize(EvaluateQErrors(deepdb, test, table.num_rows()));
      out.AddRow({FormatFixed(threshold, 1), FormatFixed(slice, 3),
                  std::to_string(counts.sum), std::to_string(counts.product),
                  std::to_string(counts.leaf), FormatFixed(train_seconds, 1),
                  FormatCompact(s.p50), FormatCompact(s.p99),
                  FormatCompact(s.max)});
    }
  }
  std::printf("%s", out.ToString().c_str());

  bench::PrintPaperExpectation(
      "A lower RDC threshold keeps dependent columns together (more sum "
      "nodes, bigger/slower models, better tails); a large minimum slice "
      "prunes the recursion toward per-column independence (smaller, "
      "faster, less accurate) — the accuracy/size trade the paper's grid "
      "search navigates under the 1.5% budget.");
  return 0;
}
