file(REMOVE_RECURSE
  "CMakeFiles/learned_estimators_test.dir/learned_estimators_test.cc.o"
  "CMakeFiles/learned_estimators_test.dir/learned_estimators_test.cc.o.d"
  "learned_estimators_test"
  "learned_estimators_test.pdb"
  "learned_estimators_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/learned_estimators_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
