# Empty dependencies file for estimators_smoke_test.
# This may be replaced when dependencies are built.
