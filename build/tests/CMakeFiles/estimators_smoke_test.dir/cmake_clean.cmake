file(REMOVE_RECURSE
  "CMakeFiles/estimators_smoke_test.dir/estimators_smoke_test.cc.o"
  "CMakeFiles/estimators_smoke_test.dir/estimators_smoke_test.cc.o.d"
  "estimators_smoke_test"
  "estimators_smoke_test.pdb"
  "estimators_smoke_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/estimators_smoke_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
