# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for dqm_bayes_inference_test.
