file(REMOVE_RECURSE
  "CMakeFiles/dqm_bayes_inference_test.dir/dqm_bayes_inference_test.cc.o"
  "CMakeFiles/dqm_bayes_inference_test.dir/dqm_bayes_inference_test.cc.o.d"
  "dqm_bayes_inference_test"
  "dqm_bayes_inference_test.pdb"
  "dqm_bayes_inference_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dqm_bayes_inference_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
