# Empty compiler generated dependencies file for dqm_bayes_inference_test.
# This may be replaced when dependencies are built.
