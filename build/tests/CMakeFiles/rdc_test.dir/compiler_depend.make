# Empty compiler generated dependencies file for rdc_test.
# This may be replaced when dependencies are built.
