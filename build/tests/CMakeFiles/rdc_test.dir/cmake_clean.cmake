file(REMOVE_RECURSE
  "CMakeFiles/rdc_test.dir/rdc_test.cc.o"
  "CMakeFiles/rdc_test.dir/rdc_test.cc.o.d"
  "rdc_test"
  "rdc_test.pdb"
  "rdc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
