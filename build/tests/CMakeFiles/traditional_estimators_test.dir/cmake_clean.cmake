file(REMOVE_RECURSE
  "CMakeFiles/traditional_estimators_test.dir/traditional_estimators_test.cc.o"
  "CMakeFiles/traditional_estimators_test.dir/traditional_estimators_test.cc.o.d"
  "traditional_estimators_test"
  "traditional_estimators_test.pdb"
  "traditional_estimators_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traditional_estimators_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
