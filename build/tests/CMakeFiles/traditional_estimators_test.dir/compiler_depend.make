# Empty compiler generated dependencies file for traditional_estimators_test.
# This may be replaced when dependencies are built.
