file(REMOVE_RECURSE
  "CMakeFiles/made_test.dir/made_test.cc.o"
  "CMakeFiles/made_test.dir/made_test.cc.o.d"
  "made_test"
  "made_test.pdb"
  "made_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/made_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
