# Empty compiler generated dependencies file for made_test.
# This may be replaced when dependencies are built.
