# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/datasets_test[1]_include.cmake")
include("/root/repo/build/tests/dqm_bayes_inference_test[1]_include.cmake")
include("/root/repo/build/tests/edge_cases_test[1]_include.cmake")
include("/root/repo/build/tests/estimators_smoke_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/gbdt_test[1]_include.cmake")
include("/root/repo/build/tests/histogram_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/kmeans_test[1]_include.cmake")
include("/root/repo/build/tests/learned_estimators_test[1]_include.cmake")
include("/root/repo/build/tests/loss_test[1]_include.cmake")
include("/root/repo/build/tests/made_test[1]_include.cmake")
include("/root/repo/build/tests/matrix_test[1]_include.cmake")
include("/root/repo/build/tests/model_io_test[1]_include.cmake")
include("/root/repo/build/tests/nn_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/query_test[1]_include.cmake")
include("/root/repo/build/tests/random_test[1]_include.cmake")
include("/root/repo/build/tests/rdc_test[1]_include.cmake")
include("/root/repo/build/tests/rules_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/table_test[1]_include.cmake")
include("/root/repo/build/tests/traditional_estimators_test[1]_include.cmake")
include("/root/repo/build/tests/transformer_test[1]_include.cmake")
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
