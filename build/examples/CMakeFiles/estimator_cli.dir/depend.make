# Empty dependencies file for estimator_cli.
# This may be replaced when dependencies are built.
