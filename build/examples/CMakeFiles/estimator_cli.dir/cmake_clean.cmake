file(REMOVE_RECURSE
  "CMakeFiles/estimator_cli.dir/estimator_cli.cpp.o"
  "CMakeFiles/estimator_cli.dir/estimator_cli.cpp.o.d"
  "estimator_cli"
  "estimator_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/estimator_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
