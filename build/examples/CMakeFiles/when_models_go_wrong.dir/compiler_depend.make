# Empty compiler generated dependencies file for when_models_go_wrong.
# This may be replaced when dependencies are built.
