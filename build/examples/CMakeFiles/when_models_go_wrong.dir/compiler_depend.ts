# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for when_models_go_wrong.
