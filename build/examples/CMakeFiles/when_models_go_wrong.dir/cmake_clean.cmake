file(REMOVE_RECURSE
  "CMakeFiles/when_models_go_wrong.dir/when_models_go_wrong.cpp.o"
  "CMakeFiles/when_models_go_wrong.dir/when_models_go_wrong.cpp.o.d"
  "when_models_go_wrong"
  "when_models_go_wrong.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/when_models_go_wrong.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
