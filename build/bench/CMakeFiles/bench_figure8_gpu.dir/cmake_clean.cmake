file(REMOVE_RECURSE
  "CMakeFiles/bench_figure8_gpu.dir/bench_common.cc.o"
  "CMakeFiles/bench_figure8_gpu.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_figure8_gpu.dir/bench_figure8_gpu.cc.o"
  "CMakeFiles/bench_figure8_gpu.dir/bench_figure8_gpu.cc.o.d"
  "bench_figure8_gpu"
  "bench_figure8_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure8_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
