# Empty dependencies file for bench_figure11_stability.
# This may be replaced when dependencies are built.
