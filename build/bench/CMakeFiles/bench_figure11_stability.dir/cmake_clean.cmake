file(REMOVE_RECURSE
  "CMakeFiles/bench_figure11_stability.dir/bench_common.cc.o"
  "CMakeFiles/bench_figure11_stability.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_figure11_stability.dir/bench_figure11_stability.cc.o"
  "CMakeFiles/bench_figure11_stability.dir/bench_figure11_stability.cc.o.d"
  "bench_figure11_stability"
  "bench_figure11_stability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure11_stability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
