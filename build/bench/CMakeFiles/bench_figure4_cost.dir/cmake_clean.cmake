file(REMOVE_RECURSE
  "CMakeFiles/bench_figure4_cost.dir/bench_common.cc.o"
  "CMakeFiles/bench_figure4_cost.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_figure4_cost.dir/bench_figure4_cost.cc.o"
  "CMakeFiles/bench_figure4_cost.dir/bench_figure4_cost.cc.o.d"
  "bench_figure4_cost"
  "bench_figure4_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure4_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
