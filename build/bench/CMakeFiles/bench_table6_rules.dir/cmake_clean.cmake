file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_rules.dir/bench_common.cc.o"
  "CMakeFiles/bench_table6_rules.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_table6_rules.dir/bench_table6_rules.cc.o"
  "CMakeFiles/bench_table6_rules.dir/bench_table6_rules.cc.o.d"
  "bench_table6_rules"
  "bench_table6_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
