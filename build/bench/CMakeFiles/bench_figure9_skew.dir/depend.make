# Empty dependencies file for bench_figure9_skew.
# This may be replaced when dependencies are built.
