file(REMOVE_RECURSE
  "CMakeFiles/bench_figure9_skew.dir/bench_common.cc.o"
  "CMakeFiles/bench_figure9_skew.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_figure9_skew.dir/bench_figure9_skew.cc.o"
  "CMakeFiles/bench_figure9_skew.dir/bench_figure9_skew.cc.o.d"
  "bench_figure9_skew"
  "bench_figure9_skew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure9_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
