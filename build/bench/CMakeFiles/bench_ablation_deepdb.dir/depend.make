# Empty dependencies file for bench_ablation_deepdb.
# This may be replaced when dependencies are built.
