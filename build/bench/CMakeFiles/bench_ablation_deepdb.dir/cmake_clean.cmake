file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_deepdb.dir/bench_ablation_deepdb.cc.o"
  "CMakeFiles/bench_ablation_deepdb.dir/bench_ablation_deepdb.cc.o.d"
  "CMakeFiles/bench_ablation_deepdb.dir/bench_common.cc.o"
  "CMakeFiles/bench_ablation_deepdb.dir/bench_common.cc.o.d"
  "bench_ablation_deepdb"
  "bench_ablation_deepdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_deepdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
