file(REMOVE_RECURSE
  "CMakeFiles/bench_figure7_tradeoff.dir/bench_common.cc.o"
  "CMakeFiles/bench_figure7_tradeoff.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_figure7_tradeoff.dir/bench_figure7_tradeoff.cc.o"
  "CMakeFiles/bench_figure7_tradeoff.dir/bench_figure7_tradeoff.cc.o.d"
  "bench_figure7_tradeoff"
  "bench_figure7_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure7_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
