file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_naru.dir/bench_ablation_naru.cc.o"
  "CMakeFiles/bench_ablation_naru.dir/bench_ablation_naru.cc.o.d"
  "CMakeFiles/bench_ablation_naru.dir/bench_common.cc.o"
  "CMakeFiles/bench_ablation_naru.dir/bench_common.cc.o.d"
  "bench_ablation_naru"
  "bench_ablation_naru.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_naru.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
