# Empty compiler generated dependencies file for bench_ablation_naru.
# This may be replaced when dependencies are built.
