# Empty dependencies file for bench_table5_tuning.
# This may be replaced when dependencies are built.
