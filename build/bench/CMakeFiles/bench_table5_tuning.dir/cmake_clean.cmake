file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_tuning.dir/bench_common.cc.o"
  "CMakeFiles/bench_table5_tuning.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_table5_tuning.dir/bench_table5_tuning.cc.o"
  "CMakeFiles/bench_table5_tuning.dir/bench_table5_tuning.cc.o.d"
  "bench_table5_tuning"
  "bench_table5_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
