file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_backbones.dir/bench_ablation_backbones.cc.o"
  "CMakeFiles/bench_ablation_backbones.dir/bench_ablation_backbones.cc.o.d"
  "CMakeFiles/bench_ablation_backbones.dir/bench_common.cc.o"
  "CMakeFiles/bench_ablation_backbones.dir/bench_common.cc.o.d"
  "bench_ablation_backbones"
  "bench_ablation_backbones.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_backbones.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
