# Empty compiler generated dependencies file for bench_ablation_backbones.
# This may be replaced when dependencies are built.
