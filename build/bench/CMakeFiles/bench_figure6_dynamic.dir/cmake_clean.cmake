file(REMOVE_RECURSE
  "CMakeFiles/bench_figure6_dynamic.dir/bench_common.cc.o"
  "CMakeFiles/bench_figure6_dynamic.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_figure6_dynamic.dir/bench_figure6_dynamic.cc.o"
  "CMakeFiles/bench_figure6_dynamic.dir/bench_figure6_dynamic.cc.o.d"
  "bench_figure6_dynamic"
  "bench_figure6_dynamic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure6_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
