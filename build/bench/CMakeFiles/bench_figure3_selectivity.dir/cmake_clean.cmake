file(REMOVE_RECURSE
  "CMakeFiles/bench_figure3_selectivity.dir/bench_common.cc.o"
  "CMakeFiles/bench_figure3_selectivity.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_figure3_selectivity.dir/bench_figure3_selectivity.cc.o"
  "CMakeFiles/bench_figure3_selectivity.dir/bench_figure3_selectivity.cc.o.d"
  "bench_figure3_selectivity"
  "bench_figure3_selectivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure3_selectivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
