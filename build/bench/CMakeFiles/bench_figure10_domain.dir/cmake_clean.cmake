file(REMOVE_RECURSE
  "CMakeFiles/bench_figure10_domain.dir/bench_common.cc.o"
  "CMakeFiles/bench_figure10_domain.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_figure10_domain.dir/bench_figure10_domain.cc.o"
  "CMakeFiles/bench_figure10_domain.dir/bench_figure10_domain.cc.o.d"
  "bench_figure10_domain"
  "bench_figure10_domain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure10_domain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
