# Empty dependencies file for bench_figure10_domain.
# This may be replaced when dependencies are built.
