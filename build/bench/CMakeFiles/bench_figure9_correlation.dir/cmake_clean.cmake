file(REMOVE_RECURSE
  "CMakeFiles/bench_figure9_correlation.dir/bench_common.cc.o"
  "CMakeFiles/bench_figure9_correlation.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_figure9_correlation.dir/bench_figure9_correlation.cc.o"
  "CMakeFiles/bench_figure9_correlation.dir/bench_figure9_correlation.cc.o.d"
  "bench_figure9_correlation"
  "bench_figure9_correlation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure9_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
