file(REMOVE_RECURSE
  "libarecel.a"
)
