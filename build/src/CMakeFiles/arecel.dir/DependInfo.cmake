
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/device.cc" "src/CMakeFiles/arecel.dir/core/device.cc.o" "gcc" "src/CMakeFiles/arecel.dir/core/device.cc.o.d"
  "/root/repo/src/core/dynamic.cc" "src/CMakeFiles/arecel.dir/core/dynamic.cc.o" "gcc" "src/CMakeFiles/arecel.dir/core/dynamic.cc.o.d"
  "/root/repo/src/core/estimator.cc" "src/CMakeFiles/arecel.dir/core/estimator.cc.o" "gcc" "src/CMakeFiles/arecel.dir/core/estimator.cc.o.d"
  "/root/repo/src/core/evaluator.cc" "src/CMakeFiles/arecel.dir/core/evaluator.cc.o" "gcc" "src/CMakeFiles/arecel.dir/core/evaluator.cc.o.d"
  "/root/repo/src/core/model_io.cc" "src/CMakeFiles/arecel.dir/core/model_io.cc.o" "gcc" "src/CMakeFiles/arecel.dir/core/model_io.cc.o.d"
  "/root/repo/src/core/registry.cc" "src/CMakeFiles/arecel.dir/core/registry.cc.o" "gcc" "src/CMakeFiles/arecel.dir/core/registry.cc.o.d"
  "/root/repo/src/core/rules.cc" "src/CMakeFiles/arecel.dir/core/rules.cc.o" "gcc" "src/CMakeFiles/arecel.dir/core/rules.cc.o.d"
  "/root/repo/src/core/tuning.cc" "src/CMakeFiles/arecel.dir/core/tuning.cc.o" "gcc" "src/CMakeFiles/arecel.dir/core/tuning.cc.o.d"
  "/root/repo/src/data/datasets.cc" "src/CMakeFiles/arecel.dir/data/datasets.cc.o" "gcc" "src/CMakeFiles/arecel.dir/data/datasets.cc.o.d"
  "/root/repo/src/data/io.cc" "src/CMakeFiles/arecel.dir/data/io.cc.o" "gcc" "src/CMakeFiles/arecel.dir/data/io.cc.o.d"
  "/root/repo/src/data/table.cc" "src/CMakeFiles/arecel.dir/data/table.cc.o" "gcc" "src/CMakeFiles/arecel.dir/data/table.cc.o.d"
  "/root/repo/src/estimators/extensions/guarded.cc" "src/CMakeFiles/arecel.dir/estimators/extensions/guarded.cc.o" "gcc" "src/CMakeFiles/arecel.dir/estimators/extensions/guarded.cc.o.d"
  "/root/repo/src/estimators/learned/binning.cc" "src/CMakeFiles/arecel.dir/estimators/learned/binning.cc.o" "gcc" "src/CMakeFiles/arecel.dir/estimators/learned/binning.cc.o.d"
  "/root/repo/src/estimators/learned/deepdb.cc" "src/CMakeFiles/arecel.dir/estimators/learned/deepdb.cc.o" "gcc" "src/CMakeFiles/arecel.dir/estimators/learned/deepdb.cc.o.d"
  "/root/repo/src/estimators/learned/dqm.cc" "src/CMakeFiles/arecel.dir/estimators/learned/dqm.cc.o" "gcc" "src/CMakeFiles/arecel.dir/estimators/learned/dqm.cc.o.d"
  "/root/repo/src/estimators/learned/lw_features.cc" "src/CMakeFiles/arecel.dir/estimators/learned/lw_features.cc.o" "gcc" "src/CMakeFiles/arecel.dir/estimators/learned/lw_features.cc.o.d"
  "/root/repo/src/estimators/learned/lw_nn.cc" "src/CMakeFiles/arecel.dir/estimators/learned/lw_nn.cc.o" "gcc" "src/CMakeFiles/arecel.dir/estimators/learned/lw_nn.cc.o.d"
  "/root/repo/src/estimators/learned/lw_xgb.cc" "src/CMakeFiles/arecel.dir/estimators/learned/lw_xgb.cc.o" "gcc" "src/CMakeFiles/arecel.dir/estimators/learned/lw_xgb.cc.o.d"
  "/root/repo/src/estimators/learned/mscn.cc" "src/CMakeFiles/arecel.dir/estimators/learned/mscn.cc.o" "gcc" "src/CMakeFiles/arecel.dir/estimators/learned/mscn.cc.o.d"
  "/root/repo/src/estimators/learned/naru.cc" "src/CMakeFiles/arecel.dir/estimators/learned/naru.cc.o" "gcc" "src/CMakeFiles/arecel.dir/estimators/learned/naru.cc.o.d"
  "/root/repo/src/estimators/traditional/bayes.cc" "src/CMakeFiles/arecel.dir/estimators/traditional/bayes.cc.o" "gcc" "src/CMakeFiles/arecel.dir/estimators/traditional/bayes.cc.o.d"
  "/root/repo/src/estimators/traditional/dbms.cc" "src/CMakeFiles/arecel.dir/estimators/traditional/dbms.cc.o" "gcc" "src/CMakeFiles/arecel.dir/estimators/traditional/dbms.cc.o.d"
  "/root/repo/src/estimators/traditional/kde.cc" "src/CMakeFiles/arecel.dir/estimators/traditional/kde.cc.o" "gcc" "src/CMakeFiles/arecel.dir/estimators/traditional/kde.cc.o.d"
  "/root/repo/src/estimators/traditional/mhist.cc" "src/CMakeFiles/arecel.dir/estimators/traditional/mhist.cc.o" "gcc" "src/CMakeFiles/arecel.dir/estimators/traditional/mhist.cc.o.d"
  "/root/repo/src/estimators/traditional/quicksel.cc" "src/CMakeFiles/arecel.dir/estimators/traditional/quicksel.cc.o" "gcc" "src/CMakeFiles/arecel.dir/estimators/traditional/quicksel.cc.o.d"
  "/root/repo/src/estimators/traditional/sampling.cc" "src/CMakeFiles/arecel.dir/estimators/traditional/sampling.cc.o" "gcc" "src/CMakeFiles/arecel.dir/estimators/traditional/sampling.cc.o.d"
  "/root/repo/src/ml/autoregressive.cc" "src/CMakeFiles/arecel.dir/ml/autoregressive.cc.o" "gcc" "src/CMakeFiles/arecel.dir/ml/autoregressive.cc.o.d"
  "/root/repo/src/ml/gbdt.cc" "src/CMakeFiles/arecel.dir/ml/gbdt.cc.o" "gcc" "src/CMakeFiles/arecel.dir/ml/gbdt.cc.o.d"
  "/root/repo/src/ml/histogram.cc" "src/CMakeFiles/arecel.dir/ml/histogram.cc.o" "gcc" "src/CMakeFiles/arecel.dir/ml/histogram.cc.o.d"
  "/root/repo/src/ml/kmeans.cc" "src/CMakeFiles/arecel.dir/ml/kmeans.cc.o" "gcc" "src/CMakeFiles/arecel.dir/ml/kmeans.cc.o.d"
  "/root/repo/src/ml/loss.cc" "src/CMakeFiles/arecel.dir/ml/loss.cc.o" "gcc" "src/CMakeFiles/arecel.dir/ml/loss.cc.o.d"
  "/root/repo/src/ml/made.cc" "src/CMakeFiles/arecel.dir/ml/made.cc.o" "gcc" "src/CMakeFiles/arecel.dir/ml/made.cc.o.d"
  "/root/repo/src/ml/matrix.cc" "src/CMakeFiles/arecel.dir/ml/matrix.cc.o" "gcc" "src/CMakeFiles/arecel.dir/ml/matrix.cc.o.d"
  "/root/repo/src/ml/nn.cc" "src/CMakeFiles/arecel.dir/ml/nn.cc.o" "gcc" "src/CMakeFiles/arecel.dir/ml/nn.cc.o.d"
  "/root/repo/src/ml/rdc.cc" "src/CMakeFiles/arecel.dir/ml/rdc.cc.o" "gcc" "src/CMakeFiles/arecel.dir/ml/rdc.cc.o.d"
  "/root/repo/src/ml/transformer.cc" "src/CMakeFiles/arecel.dir/ml/transformer.cc.o" "gcc" "src/CMakeFiles/arecel.dir/ml/transformer.cc.o.d"
  "/root/repo/src/util/archive.cc" "src/CMakeFiles/arecel.dir/util/archive.cc.o" "gcc" "src/CMakeFiles/arecel.dir/util/archive.cc.o.d"
  "/root/repo/src/util/ascii_table.cc" "src/CMakeFiles/arecel.dir/util/ascii_table.cc.o" "gcc" "src/CMakeFiles/arecel.dir/util/ascii_table.cc.o.d"
  "/root/repo/src/util/random.cc" "src/CMakeFiles/arecel.dir/util/random.cc.o" "gcc" "src/CMakeFiles/arecel.dir/util/random.cc.o.d"
  "/root/repo/src/util/stats.cc" "src/CMakeFiles/arecel.dir/util/stats.cc.o" "gcc" "src/CMakeFiles/arecel.dir/util/stats.cc.o.d"
  "/root/repo/src/util/thread_pool.cc" "src/CMakeFiles/arecel.dir/util/thread_pool.cc.o" "gcc" "src/CMakeFiles/arecel.dir/util/thread_pool.cc.o.d"
  "/root/repo/src/workload/generator.cc" "src/CMakeFiles/arecel.dir/workload/generator.cc.o" "gcc" "src/CMakeFiles/arecel.dir/workload/generator.cc.o.d"
  "/root/repo/src/workload/query.cc" "src/CMakeFiles/arecel.dir/workload/query.cc.o" "gcc" "src/CMakeFiles/arecel.dir/workload/query.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
