# Empty dependencies file for arecel.
# This may be replaced when dependencies are built.
